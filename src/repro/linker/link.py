"""The link pass: union summaries, report cross-unit inconsistencies.

The :class:`Linker` is a streaming accumulator — :meth:`Linker.add` takes
one :class:`~repro.linker.summary.InterfaceSummary` at a time and keeps
only per-symbol aggregates, so linking a 100k-unit corpus holds symbol
tables, never sources or results.  :meth:`Linker.report` then applies
four rules, in deterministic symbol order:

``LINK_CONFLICTING_DECL``
    The same symbol carries two different rendered C types across the
    corpus's definitions, extern declarations, and typed host-side
    claims (Rust ``extern "C"`` imports and ``#[no_mangle]`` exports
    render to canonical C, so they join the comparison; bindings of
    the other dialects carry no type and are skipped as before).
``LINK_DUPLICATE_REGISTRATION``
    The same host-visible registration key (``PyMethodDef`` name,
    ``JNINativeMethod`` name+descriptor, ``Java_*``/``PyInit_*`` export)
    is claimed by more than one site.
``LINK_DUPLICATE_DEFINITION``
    A link-relevant symbol (one some other unit or the host interface
    refers to) is defined with a body in more than one unit.  Unreferenced
    duplicates are ignored: the C parser drops ``static``, so identical
    private helpers copied between units must not be flagged.
``LINK_UNRESOLVED_EXTERN``
    A registration target or host binding names a C symbol no linked
    unit defines.  Host exports count as definitions: a Rust
    ``#[no_mangle]`` fn resolves the C prototypes that call it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..diagnostics import Diagnostic, DiagnosticBag, Kind
from ..source import Position, Span
from ..telemetry.metrics import count_link_conflicts
from .summary import InterfaceSummary, SymbolRow

#: registration-key separator; NUL never appears in parsed symbol text
_KEY_SEP = "\x00"


def _row_span(row: SymbolRow) -> Span:
    position = Position(0, row.line, 1)
    return Span(row.file or "<linked>", position, position)


def _site(row: SymbolRow) -> str:
    return f"{row.file}:{row.line}"


#: Fixed-width ``<stdint.h>`` aliases normalize to one spelling before
#: the conflict comparison: ``uint32_t`` versus ``unsigned int`` is the
#: same platform type, not a link hazard (a Rust host renders ``u32`` as
#: ``unsigned int`` while a bindgen header spells ``uint32_t``).
#: Pointer-width aliases (``size_t``, ``uintptr_t``, ...) stay distinct:
#: they are semantic types of their own and mixing them is a finding.
_STDINT_ALIASES = {
    "int8_t": "signed char",
    "uint8_t": "unsigned char",
    "int16_t": "short",
    "uint16_t": "unsigned short",
    "int32_t": "int",
    "uint32_t": "unsigned int",
    "int64_t": "long long",
    "uint64_t": "unsigned long long",
}
_STDINT_RE = re.compile(r"\b(u?int(?:8|16|32|64)_t)\b")


def _canonical_type(rendered: str) -> str:
    return _STDINT_RE.sub(
        lambda m: _STDINT_ALIASES[m.group(1)], rendered
    )


@dataclass
class LinkReport:
    """Outcome of one whole-corpus link pass."""

    diagnostics: DiagnosticBag = field(default_factory=DiagnosticBag)
    units: int = 0
    exports: int = 0
    externs: int = 0
    registrations: int = 0
    bindings: int = 0
    host_exports: int = 0
    elapsed_seconds: float = 0.0

    def tally(self) -> dict[str, int]:
        return self.diagnostics.tally()

    @property
    def errors(self) -> list[Diagnostic]:
        return self.diagnostics.errors

    def render(self) -> str:
        lines = ["== link"]
        for diag in self.diagnostics:
            lines.append("   " + diag.render())
        counts = self.tally()
        # mention host exports only when a dialect produced them, so the
        # footer stays byte-identical for the pre-existing corpora
        hosts = (
            f", {self.host_exports} host export(s)"
            if self.host_exports
            else ""
        )
        lines.append(
            f"-- link: {self.units} unit(s), {self.exports} export(s), "
            f"{self.externs} extern(s), {self.registrations} "
            f"registration(s), {self.bindings} binding(s){hosts}: "
            f"{counts['errors']} error(s), {counts['warnings']} warning(s)"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "units": self.units,
            "exports": self.exports,
            "externs": self.externs,
            "registrations": self.registrations,
            "bindings": self.bindings,
            "host_exports": self.host_exports,
            "tally": self.tally(),
            "diagnostics": [diag.to_dict() for diag in self.diagnostics],
            "elapsed_seconds": self.elapsed_seconds,
        }


class Linker:
    """Streaming cross-unit accumulator over interface summaries."""

    def __init__(self) -> None:
        self.units = 0
        #: symbol -> definition sites (unit, row)
        self._exports: dict[str, list[tuple[str, SymbolRow]]] = {}
        #: symbol -> extern declaration sites (unit, row)
        self._externs: dict[str, list[tuple[str, SymbolRow]]] = {}
        #: registration key -> sites (unit, row)
        self._registrations: dict[str, list[tuple[str, SymbolRow]]] = {}
        #: host bindings, deduped — host files are shared across units,
        #: so every unit of an OCaml corpus reports the same externals
        self._bindings: dict[tuple[str, str, str, int, str], SymbolRow] = {}
        #: host-side definitions (Rust ``#[no_mangle]``), deduped for the
        #: same reason: the ``.rs`` side repeats in every unit's summary
        self._host_exports: dict[tuple[str, str, str, int, str], SymbolRow] = {}
        self._registration_rows = 0

    def add(self, summary: InterfaceSummary) -> None:
        self.units += 1
        unit = summary.unit
        for row in summary.exports:
            self._exports.setdefault(row.symbol, []).append((unit, row))
        for row in summary.externs:
            self._externs.setdefault(row.symbol, []).append((unit, row))
        for row in summary.registrations:
            self._registration_rows += 1
            key = row.symbol + _KEY_SEP + row.type
            self._registrations.setdefault(key, []).append((unit, row))
        for row in summary.bindings:
            dedupe = (row.symbol, row.type, row.file, row.line, row.detail)
            self._bindings.setdefault(dedupe, row)
        for row in summary.host_exports:
            dedupe = (row.symbol, row.type, row.file, row.line, row.detail)
            self._host_exports.setdefault(dedupe, row)

    def add_dict(self, data: dict) -> None:
        self.add(InterfaceSummary.from_dict(data))

    # -- rule helpers ------------------------------------------------------

    def _registration_target(self, row: SymbolRow) -> str:
        """The C symbol a registration row requires to exist."""
        return row.detail or row.symbol

    def _referenced_symbols(self) -> set[str]:
        """Symbols some *other* site refers to — the link-relevant set."""
        referenced = set(self._externs)
        for sites in self._registrations.values():
            for _unit, row in sites:
                referenced.add(self._registration_target(row))
        for row in self._bindings.values():
            referenced.add(row.symbol)
        return referenced

    def report(self) -> LinkReport:
        bag = DiagnosticBag()
        referenced = self._referenced_symbols()
        duplicate_registered: set[str] = set()

        # duplicate registrations first: a symbol flagged here must not
        # also be flagged as a duplicate definition
        for key in sorted(self._registrations):
            sites = self._registrations[key]
            if len(sites) < 2:
                continue
            sites = sorted(sites, key=lambda s: (_site(s[1]), s[0]))
            name = key.split(_KEY_SEP, 1)[0]
            where = ", ".join(
                f"{unit} ({_site(row)})" for unit, row in sites
            )
            bag.emit(
                Kind.LINK_DUPLICATE_REGISTRATION,
                _row_span(sites[-1][1]),
                f"entry point '{name}' registered more than once: {where}",
            )
            for _unit, row in sites:
                duplicate_registered.add(self._registration_target(row))

        # typed host-side claims join the comparison: Rust imports are
        # bindings with a rendered C type, Rust exports are host_exports
        host_claims: dict[str, list[tuple[str, SymbolRow]]] = {}
        for row in self._bindings.values():
            if row.type:
                host_claims.setdefault(row.symbol, []).append(("<host>", row))
        for row in self._host_exports.values():
            host_claims.setdefault(row.symbol, []).append(("<host>", row))

        # conflicting declarations: every type claim (definitions plus
        # extern prototypes plus typed host claims) for one symbol must
        # render identically
        claim_symbols = sorted(
            set(self._exports) | set(self._externs) | set(host_claims)
        )
        for symbol in claim_symbols:
            claims = list(self._exports.get(symbol, ()))
            claims += self._externs.get(symbol, ())
            claims += host_claims.get(symbol, ())
            by_type: dict[str, tuple[str, SymbolRow]] = {}
            for unit, row in sorted(
                claims, key=lambda s: (_site(s[1]), s[0])
            ):
                if not row.type:
                    continue
                canonical = _canonical_type(row.type)
                if canonical not in by_type:
                    by_type[canonical] = (unit, row)
            if len(by_type) < 2:
                continue
            rendered = "; ".join(
                f"'{row.type}' at {_site(row)}"
                for _unit, row in by_type.values()
            )
            last = list(by_type.values())[-1][1]
            bag.emit(
                Kind.LINK_CONFLICTING_DECL,
                _row_span(last),
                f"boundary symbol '{symbol}' declared with conflicting "
                f"C types: {rendered}",
            )

        # duplicate definitions of link-relevant symbols; a host-side
        # definition (Rust #[no_mangle]) collides with a C body too
        definition_sites: dict[str, list[tuple[str, SymbolRow]]] = {
            symbol: list(sites) for symbol, sites in self._exports.items()
        }
        for row in self._host_exports.values():
            definition_sites.setdefault(row.symbol, []).append(
                ("<host>", row)
            )
        for symbol in sorted(definition_sites):
            sites = definition_sites[symbol]
            if len(sites) < 2:
                continue
            if symbol in duplicate_registered:
                continue  # already reported as a duplicate registration
            if symbol not in referenced:
                continue  # likely copied static helpers; not link-visible
            sites = sorted(sites, key=lambda s: (_site(s[1]), s[0]))
            where = " and ".join(_site(row) for _unit, row in sites)
            bag.emit(
                Kind.LINK_DUPLICATE_DEFINITION,
                _row_span(sites[-1][1]),
                f"boundary symbol '{symbol}' defined in both {where}",
            )

        # unresolved registration targets and host bindings; host-side
        # definitions resolve references like any C body does
        defined = set(self._exports)
        defined.update(row.symbol for row in self._host_exports.values())
        missing: dict[str, tuple[str, SymbolRow]] = {}
        for key in sorted(self._registrations):
            for unit, row in self._registrations[key]:
                target = self._registration_target(row)
                if target not in defined and target not in missing:
                    missing[target] = ("registered by", row)
        for dedupe in sorted(self._bindings):
            row = self._bindings[dedupe]
            if row.symbol not in defined and row.symbol not in missing:
                missing[row.symbol] = ("bound by", row)
        for target in sorted(missing):
            origin, row = missing[target]
            bag.emit(
                Kind.LINK_UNRESOLVED_EXTERN,
                _row_span(row),
                f"'{target}' is {origin} {row.file or '<unknown>'} "
                f"but defined in no linked unit",
            )

        conflicts: dict[str, int] = {}
        for diag in bag:
            name = diag.kind.name.lower()
            conflicts[name] = conflicts.get(name, 0) + 1
        for kind_name, amount in conflicts.items():
            count_link_conflicts(kind_name, amount)

        return LinkReport(
            diagnostics=bag,
            units=self.units,
            exports=sum(len(sites) for sites in self._exports.values()),
            externs=sum(len(sites) for sites in self._externs.values()),
            registrations=self._registration_rows,
            bindings=len(self._bindings),
            host_exports=len(self._host_exports),
        )
