"""Shared C-side summary extraction.

All three dialects parse their units into the same
:class:`~repro.cfront.ast.TranslationUnit` shape, so the export/extern
split is dialect-independent: a :class:`~repro.cfront.ast.FunctionDef`
with a body is an *export* (the unit supplies that symbol at link time);
a prototype whose name nothing in the same unit defines is an *extern*
(a claim about a symbol some other unit must supply).  Dialects layer
their registration tables and host bindings on top.

Types are rendered through :class:`~repro.core.srctypes.CSrcType`'s
``__str__`` so two units agree exactly when their declarations resolve to
the same C type — the linker compares rendered strings, never live type
objects, keeping summaries trivially serializable.
"""

from __future__ import annotations

from typing import Iterable

from ..cfront.ast import FunctionDef, TranslationUnit
from .summary import InterfaceSummary, SymbolRow


def function_type(fn: FunctionDef) -> str:
    """Render a function's C type as ``ret(param, ...)``."""
    params = ", ".join(str(ctype) for _name, ctype in fn.params)
    return f"{fn.return_type}({params})"


def function_row(fn: FunctionDef, *, detail: str = "") -> SymbolRow:
    span = fn.span
    return SymbolRow(
        symbol=fn.name,
        type=function_type(fn),
        file=span.filename,
        line=span.start.line,
        detail=detail,
    )


def summarize_units(
    summary: InterfaceSummary,
    units: Iterable[TranslationUnit],
    *,
    ignore: frozenset[str] = frozenset(),
) -> InterfaceSummary:
    """Fill ``exports``/``externs`` from parsed translation units.

    ``ignore`` names symbols that are not link-relevant — the dialect's
    runtime builtins (``caml_alloc``, ``PyArg_ParseTuple``, JNI entry
    points): prototypes for those describe the host runtime, not a
    sibling unit, and must not produce unresolved-extern noise.
    """
    defined: set[str] = set()
    for unit in units:
        for fn in unit.functions:
            if fn.body is not None:
                defined.add(fn.name)
    seen_externs: set[str] = set()
    for unit in units:
        for fn in unit.functions:
            if fn.name in ignore:
                continue
            if fn.body is not None:
                summary.exports.append(function_row(fn))
            elif fn.name not in defined and fn.name not in seen_externs:
                seen_externs.add(fn.name)
                summary.externs.append(function_row(fn))
    return summary
