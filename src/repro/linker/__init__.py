"""Whole-program boundary linker (ROADMAP open item 2).

The per-unit checker validates each glue unit against its host interface
``Γ_I`` in isolation; this package adds the cross-unit *link step*.  Each
dialect attaches a cheap, JSON-able :class:`~repro.linker.summary.
InterfaceSummary` to its per-unit report (exported externs with resolved
C types, registration-table entries, host-interface bindings); the
:class:`~repro.linker.link.Linker` unions those summaries over an entire
corpus — streamed one at a time, never holding sources — and reports the
inconsistencies no single-unit analysis can see: the same external
declared with conflicting types in two stubs, duplicate ``Java_*`` or
``PyMethodDef`` registrations, registered entry points that nothing
defines.
"""

from .link import LinkReport, Linker
from .summary import InterfaceSummary, SymbolRow

__all__ = [
    "InterfaceSummary",
    "LinkReport",
    "Linker",
    "SymbolRow",
]
