"""Kernel flavor: the optional mypyc-compiled analysis core.

The dialect-independent kernel — interning, unification, the
representational lattice, the fused dataflow passes in ``stmts``/``exprs``
and the master-regex lexer — is written compilation-clean: precise
annotations, no monkeypatching, no dynamic class tricks in the algorithm
modules.  ``build_kernel.py`` (or ``MLFFI_COMPILE=1 pip wheel .``) compiles
the modules in :data:`KERNEL_MODULES` with mypyc into extension modules
that shadow their ``.py`` sources on import; the interpreted path stays
the always-available fallback, and both produce byte-identical
diagnostics (CI runs the full suite both ways).

Two knobs, resolved here because everything else imports the kernel:

* **detection** — :func:`kernel_flavor` reports ``"compiled"`` when any
  kernel module was imported from an extension, ``"interpreted"``
  otherwise.  Surfaced in ``mlffi-check --version`` and the server's
  ``status`` RPC so a deployment can always tell which kernel answered.
* **override** — ``MLFFI_PURE_PYTHON=1`` forces the interpreted kernel
  even when compiled extensions are installed:
  :func:`install_pure_python_hook` (called from ``repro/__init__`` before
  any kernel module loads) puts a meta-path finder first in line that
  resolves kernel modules from their ``.py`` sources, bypassing the
  extension loader.

This module must import nothing from :mod:`repro` (everything in
:mod:`repro` may import it) and only stdlib at module level.
"""

from __future__ import annotations

import importlib.util
import os
import sys
from importlib.abc import MetaPathFinder
from importlib.machinery import ModuleSpec, SourceFileLoader
from pathlib import Path
from typing import Optional, Sequence

#: The compiled module set: the dialect-independent algorithm layer.  The
#: type-term definition modules (``types``, ``srctypes``, ``environment``,
#: ``intern``) deliberately stay interpreted — hash-consing is a metaclass
#: (a dynamic trick mypyc rejects) and seed artifacts pickle their
#: instances, which must load identically under either kernel flavor.
KERNEL_MODULES: tuple[str, ...] = (
    "repro.core.constraints",
    "repro.core.exprs",
    "repro.core.gceffects",
    "repro.core.lattice",
    "repro.core.liveness",
    "repro.core.stmts",
    "repro.core.translate",
    "repro.core.unify",
    "repro.cfront.lexer",
)

_EXTENSION_SUFFIXES = (".so", ".pyd")

PURE_PYTHON_ENV = "MLFFI_PURE_PYTHON"


def pure_python_forced() -> bool:
    """True when ``MLFFI_PURE_PYTHON`` asks for the interpreted kernel."""
    return os.environ.get(PURE_PYTHON_ENV, "").strip() in ("1", "true", "on")


class _PurePythonFinder(MetaPathFinder):
    """Resolve kernel modules from their ``.py`` sources, always.

    Sitting first on ``sys.meta_path``, this wins the import race against
    the extension loader that would otherwise prefer a compiled
    ``unify.cpython-*.so`` over ``unify.py``.  For an installation with no
    compiled kernel it resolves to exactly what the default machinery
    would, so installing it is always safe.
    """

    def find_spec(
        self,
        fullname: str,
        path: Optional[Sequence[str]] = None,
        target=None,
    ) -> Optional[ModuleSpec]:
        if fullname not in KERNEL_MODULES:
            return None
        if path is None:
            return None
        leaf = fullname.rpartition(".")[2]
        for entry in path:
            candidate = Path(entry) / f"{leaf}.py"
            if candidate.is_file():
                loader = SourceFileLoader(fullname, str(candidate))
                return importlib.util.spec_from_file_location(
                    fullname, candidate, loader=loader
                )
        return None


_HOOK: Optional[_PurePythonFinder] = None


def install_pure_python_hook() -> bool:
    """Install the interpreted-kernel override when the env asks for it.

    Called from ``repro/__init__`` before the first kernel import; a
    second call is a no-op.  Returns whether the hook is active.
    """
    global _HOOK
    if not pure_python_forced():
        return False
    if _HOOK is None:
        _HOOK = _PurePythonFinder()
        sys.meta_path.insert(0, _HOOK)
    return True


def _module_is_compiled(name: str) -> bool:
    module = sys.modules.get(name)
    if module is None:
        return False
    origin = getattr(module, "__file__", None) or ""
    return origin.endswith(_EXTENSION_SUFFIXES)


def compiled_modules() -> tuple[str, ...]:
    """Kernel modules currently served by a compiled extension."""
    return tuple(
        name for name in KERNEL_MODULES if _module_is_compiled(name)
    )


def compiled_available() -> bool:
    """Whether a compiled kernel is installed (even if overridden).

    Probes the package directories on disk rather than loaded modules,
    so it stays accurate under ``MLFFI_PURE_PYTHON=1`` — where the import
    hook ensures nothing compiled ever loads.
    """
    if compiled_modules():
        return True
    package_dir = Path(__file__).resolve().parent
    for name in KERNEL_MODULES:
        parts = name.split(".")[1:]  # drop the "repro" prefix
        stem = package_dir.joinpath(*parts)
        for candidate in stem.parent.glob(stem.name + ".*"):
            if candidate.name.endswith(_EXTENSION_SUFFIXES):
                return True
    return False


def kernel_flavor() -> str:
    """``"compiled"`` when any loaded kernel module is an extension."""
    return "compiled" if compiled_modules() else "interpreted"


def describe() -> dict:
    """The ``kernel`` stanza of ``--version`` and the ``status`` RPC."""
    compiled = compiled_modules()
    return {
        "flavor": "compiled" if compiled else "interpreted",
        "compiled_available": compiled_available(),
        "pure_python_forced": pure_python_forced(),
        "compiled_modules": len(compiled),
        "kernel_modules": len(KERNEL_MODULES),
    }
