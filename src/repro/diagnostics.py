"""Diagnostics emitted by the multi-lingual checker.

The paper's evaluation (Figure 9) classifies every report into one of four
columns: outright *errors*, *warnings* for questionable coding practice,
*false positives* (reports about code that is actually correct), and
*imprecision* warnings (places where the analysis lost too much information
to say anything).  :class:`Category` mirrors those columns so the benchmark
harness can regenerate the table mechanically.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from .source import DUMMY_SPAN, Span


class Category(enum.Enum):
    """Figure 9 column a diagnostic belongs to."""

    ERROR = "error"
    WARNING = "warning"
    FALSE_POSITIVE_PRONE = "false-positive"
    IMPRECISION = "imprecision"

    @property
    def sarif_level(self) -> str:
        """The SARIF 2.1.0 ``level`` this column maps to.

        Outright errors and questionable practice keep their severity;
        the analysis-confidence columns (false-positive-prone patterns,
        imprecision) become ``note`` so code-scanning UIs surface them
        without failing a gate.
        """
        if self is Category.ERROR:
            return "error"
        if self is Category.WARNING:
            return "warning"
        return "note"


class Kind(enum.Enum):
    """Fine-grained diagnostic kinds, following the taxonomy of paper §5.2.

    Each kind carries its default :class:`Category`; the categories are what
    Figure 9 tabulates, the kinds are what §5.2 describes in prose.
    """

    # -- outright errors ---------------------------------------------------
    TYPE_MISMATCH = ("type mismatch between OCaml and C", Category.ERROR)
    BAD_VAL_INT = ("Val_int applied to a boxed/value argument", Category.ERROR)
    BAD_INT_VAL = ("Int_val applied to a non-value or boxed argument", Category.ERROR)
    TAG_OUT_OF_RANGE = ("tag test exceeds the constructors of the type", Category.ERROR)
    UNPROTECTED_VALUE = (
        "value live across a call that may trigger the OCaml GC "
        "but never registered with CAMLprotect",
        Category.ERROR,
    )
    MISSING_CAMLRETURN = (
        "function registers values with CAMLparam/CAMLlocal but returns "
        "with plain return",
        Category.ERROR,
    )
    SPURIOUS_CAMLRETURN = (
        "CAMLreturn used but no values were registered",
        Category.ERROR,
    )
    BAD_FIELD_ACCESS = ("Field access on unboxed or mistyped value", Category.ERROR)
    ARITY_MISMATCH = ("C function arity differs from external declaration", Category.ERROR)
    OPTION_MISUSE = (
        "option argument dereferenced as its payload without a tag test",
        Category.ERROR,
    )
    UNSAFE_VALUE = ("unsafe value (interior pointer) escapes the function", Category.ERROR)

    # -- pyext dialect: the CPython boundary analogues ---------------------
    PY_FORMAT_MISMATCH = (
        "PyArg_ParseTuple/Py_BuildValue format string disagrees with the "
        "supplied C arguments",
        Category.ERROR,
    )
    PY_REF_LEAK = (
        "new (owned) reference is never released",
        Category.ERROR,
    )
    PY_USE_AFTER_DECREF = (
        "object used after Py_DECREF released the only reference",
        Category.ERROR,
    )

    # -- jni dialect: the JVM boundary analogues ---------------------------
    JNI_BAD_DESCRIPTOR = (
        "malformed JVM type/method descriptor (or dotted class name) in a "
        "FindClass/GetMethodID/GetFieldID string constant",
        Category.ERROR,
    )
    JNI_DESCRIPTOR_MISMATCH = (
        "JNI call disagrees with the descriptor its jmethodID/jfieldID "
        "was looked up with",
        Category.ERROR,
    )
    JNI_LOCAL_REF_LEAK = (
        "local reference created on every loop iteration without "
        "DeleteLocalRef; the local reference table will overflow",
        Category.ERROR,
    )
    JNI_USE_AFTER_DELETE = (
        "reference used after DeleteLocalRef/DeleteGlobalRef released it",
        Category.ERROR,
    )
    JNI_GLOBAL_REF_LEAK = (
        "global reference from NewGlobalRef is never released",
        Category.ERROR,
    )

    # -- rust dialect: extern "C" declaration agreement --------------------
    RUST_DECL_MISMATCH = (
        "Rust extern \"C\" declaration disagrees with the C-side "
        "declaration of the same symbol (arity or rendered type)",
        Category.ERROR,
    )
    RUST_PLATFORM_WIDTH = (
        "platform-dependent width class on one side of the boundary "
        "paired with a fixed (or differently platform-dependent) width "
        "on the other (size_t/usize vs int/i32, long vs i64)",
        Category.ERROR,
    )
    RUST_PTR_INT_CONFUSION = (
        "pointer on one side of the boundary, integer on the other",
        Category.ERROR,
    )
    RUST_ENUM_REPR = (
        "enum crosses the extern \"C\" boundary without an explicit "
        "repr, or its repr disagrees with the C-side width",
        Category.ERROR,
    )
    RUST_STR_PASSING = (
        "non-FFI-safe Rust string/slice type (&str, String, &[T]) in an "
        "extern \"C\" signature where C expects a NUL-terminated pointer "
        "or pointer+length pair",
        Category.ERROR,
    )

    # -- link step: cross-unit boundary inconsistencies --------------------
    LINK_CONFLICTING_DECL = (
        "the same boundary symbol is declared with conflicting C types "
        "in different translation units",
        Category.ERROR,
    )
    LINK_DUPLICATE_REGISTRATION = (
        "the same host-visible entry point is registered by more than "
        "one translation unit",
        Category.ERROR,
    )
    LINK_DUPLICATE_DEFINITION = (
        "the same boundary function is defined in more than one "
        "translation unit",
        Category.ERROR,
    )

    # -- questionable practice --------------------------------------------
    TRAILING_UNIT = (
        "external declares a trailing unit parameter the C function omits",
        Category.WARNING,
    )
    POLYMORPHIC_ABUSE = (
        "polymorphic 'a parameter is used at a concrete type in C",
        Category.WARNING,
    )
    VALUE_CAST = ("suspicious cast involving a value type", Category.WARNING)
    PY_BORROWED_ESCAPE = (
        "borrowed reference escapes (returned or stored) without Py_INCREF",
        Category.WARNING,
    )
    JNI_LOCAL_ESCAPE = (
        "local reference cached beyond the native frame (stored in a "
        "global) without NewGlobalRef",
        Category.WARNING,
    )
    LINK_UNRESOLVED_EXTERN = (
        "a registered or host-bound boundary symbol has no definition "
        "anywhere in the linked corpus",
        Category.WARNING,
    )

    # -- patterns the checker cannot prove safe (paper's false positives) --
    POLY_VARIANT = (
        "polymorphic variants are not supported; uses are flagged",
        Category.FALSE_POSITIVE_PRONE,
    )
    DISGUISED_PTR_ARITH = (
        "pointer arithmetic disguised as integer arithmetic on a value",
        Category.FALSE_POSITIVE_PRONE,
    )

    # -- imprecision --------------------------------------------------------
    UNKNOWN_OFFSET = (
        "offset into a structured block is statically unknown",
        Category.IMPRECISION,
    )
    GLOBAL_VALUE = ("global variable of type value", Category.IMPRECISION)
    ADDRESS_TAKEN = ("address of a value variable is taken", Category.IMPRECISION)
    FUNCTION_POINTER = (
        "call through an unknown C function pointer",
        Category.IMPRECISION,
    )

    def __init__(self, summary: str, category: Category):
        self.summary = summary
        self.category = category


@dataclass(frozen=True)
class Diagnostic:
    """A single report: a kind, a location, and a human-readable message."""

    kind: Kind
    span: Span
    message: str
    function: str | None = None

    @property
    def category(self) -> Category:
        return self.kind.category

    @property
    def rule_id(self) -> str:
        """The stable rule ID this diagnostic fires (see :mod:`repro.rules`).

        Rule IDs are the public contract — SARIF ``ruleId``, conformance
        grouping, suppression configs — and are identical to the
        :class:`Kind` member name, which is append-only: a kind is never
        renamed once released.
        """
        return self.kind.name

    def render(self) -> str:
        where = f"{self.span}" if self.span is not DUMMY_SPAN else "<unknown>"
        scope = f" [in {self.function}]" if self.function else ""
        return f"{where}: {self.category.value}: {self.message}{scope}"

    def __str__(self) -> str:
        return self.render()

    def to_dict(self) -> dict:
        """JSON-able form, round-tripped by the batch-engine result cache."""
        return {
            "kind": self.kind.name,
            "rule_id": self.rule_id,
            "category": self.category.value,
            "span": self.span.to_dict(),
            "message": self.message,
            "function": self.function,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Diagnostic":
        return cls(
            kind=Kind[data["kind"]],
            span=Span.from_dict(data["span"]),
            message=data["message"],
            function=data.get("function"),
        )


@dataclass
class DiagnosticBag:
    """Mutable collection of diagnostics with Figure 9 style tallies."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def emit(
        self,
        kind: Kind,
        span: Span,
        message: str,
        *,
        function: str | None = None,
    ) -> Diagnostic:
        diag = Diagnostic(kind=kind, span=span, message=message, function=function)
        self.diagnostics.append(diag)
        return diag

    def extend(self, other: "DiagnosticBag" | Iterable[Diagnostic]) -> None:
        items = other.diagnostics if isinstance(other, DiagnosticBag) else other
        self.diagnostics.extend(items)

    def by_category(self, category: Category) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.category is category]

    def count(self, category: Category) -> int:
        return len(self.by_category(category))

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_category(Category.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.by_category(Category.WARNING)

    @property
    def false_positives(self) -> list[Diagnostic]:
        return self.by_category(Category.FALSE_POSITIVE_PRONE)

    @property
    def imprecision(self) -> list[Diagnostic]:
        return self.by_category(Category.IMPRECISION)

    def tally(self) -> dict[str, int]:
        """Counts in Figure 9 column order."""
        return {
            "errors": self.count(Category.ERROR),
            "warnings": self.count(Category.WARNING),
            "false_positives": self.count(Category.FALSE_POSITIVE_PRONE),
            "imprecision": self.count(Category.IMPRECISION),
        }

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __bool__(self) -> bool:
        return bool(self.diagnostics)
