"""The simplified C language of paper Figure 5.

This is the analysis's intermediate representation, modelled on CIL: a
function body is a flat list of statements; structured control flow has
been compiled to labels and conditional branches; the OCaml FFI macros
appear as primitives (``Val_int``, ``Int_val``, the three dynamic tests,
``CAMLprotect`` and ``CAMLreturn``).

Expressions are side-effect free.  Function calls are not expressions; they
occur only as the right-hand side of an assignment or as a bare call
statement (the paper folds this into its (App) rule).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from ..core.srctypes import CSrcType
from ..source import DUMMY_SPAN, Span


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class IntLit:
    """An integer constant ``n``."""

    value: int
    span: Span = DUMMY_SPAN

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True, slots=True)
class StrLit:
    """A C string literal; typed as ``char *`` (scalar pointer)."""

    value: str
    span: Span = DUMMY_SPAN

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True, slots=True)
class VarExp:
    """A variable reference ``x``."""

    name: str
    span: Span = DUMMY_SPAN

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Deref:
    """``*e``."""

    exp: "Expr"
    span: Span = DUMMY_SPAN

    def __str__(self) -> str:
        return f"*{self.exp}"


@dataclass(frozen=True, slots=True)
class AOp:
    """``e aop e`` — arithmetic/comparison on C integers."""

    op: str
    left: "Expr"
    right: "Expr"
    span: Span = DUMMY_SPAN

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True, slots=True)
class PtrAdd:
    """``e +p e`` — address of an offset into a block."""

    base: "Expr"
    offset: "Expr"
    span: Span = DUMMY_SPAN

    def __str__(self) -> str:
        return f"({self.base} +p {self.offset})"


@dataclass(frozen=True, slots=True)
class CastExp:
    """``(ct) e``."""

    ctype: CSrcType
    exp: "Expr"
    span: Span = DUMMY_SPAN

    def __str__(self) -> str:
        return f"(({self.ctype}) {self.exp})"


@dataclass(frozen=True, slots=True)
class ValIntExp:
    """``Val_int e`` — box a C integer as an OCaml unboxed value."""

    exp: "Expr"
    span: Span = DUMMY_SPAN

    def __str__(self) -> str:
        return f"Val_int({self.exp})"


@dataclass(frozen=True, slots=True)
class IntValExp:
    """``Int_val e`` — project an OCaml unboxed value to a C integer."""

    exp: "Expr"
    span: Span = DUMMY_SPAN

    def __str__(self) -> str:
        return f"Int_val({self.exp})"


@dataclass(frozen=True, slots=True)
class AddrOf:
    """``&x`` — handled heuristically (paper §5.1)."""

    name: str
    span: Span = DUMMY_SPAN

    def __str__(self) -> str:
        return f"&{self.name}"


Expr = Union[IntLit, StrLit, VarExp, Deref, AOp, PtrAdd, CastExp, ValIntExp, IntValExp, AddrOf]


@dataclass(frozen=True, slots=True)
class CallExp:
    """A call ``f(e1, ..., en)``; ``func_exp`` is set for indirect calls."""

    func: str
    args: Tuple[Expr, ...]
    span: Span = DUMMY_SPAN
    is_indirect: bool = False

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        star = "*" if self.is_indirect else ""
        return f"{star}{self.func}({args})"


Rhs = Union[Expr, CallExp]


# ---------------------------------------------------------------------------
# L-values
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class MemLval:
    """``*(e +p n)`` — a store into a structured block or through a pointer."""

    base: Expr
    offset: int
    span: Span = DUMMY_SPAN

    def __str__(self) -> str:
        if self.offset:
            return f"*({self.base} +p {self.offset})"
        return f"*{self.base}"


Lval = Union[VarExp, MemLval]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class SAssign:
    """``lval := e`` or ``lval := f(e, ...)``."""

    lval: Optional[Lval]
    rhs: Rhs
    span: Span = DUMMY_SPAN

    def __str__(self) -> str:
        if self.lval is None:
            return str(self.rhs)
        return f"{self.lval} := {self.rhs}"


@dataclass(frozen=True, slots=True)
class SReturn:
    """``return e``; ``exp`` is None for void returns."""

    exp: Optional[Expr]
    span: Span = DUMMY_SPAN

    def __str__(self) -> str:
        return f"return {self.exp}" if self.exp is not None else "return"


@dataclass(frozen=True, slots=True)
class SCamlReturn:
    """``CAMLreturn(e)`` — return releasing registered values."""

    exp: Optional[Expr]
    span: Span = DUMMY_SPAN

    def __str__(self) -> str:
        return f"CAMLreturn({self.exp if self.exp is not None else ''})"


@dataclass(frozen=True, slots=True)
class SGoto:
    label: str
    span: Span = DUMMY_SPAN

    def __str__(self) -> str:
        return f"goto {self.label}"


@dataclass(frozen=True, slots=True)
class SIf:
    """``if e then L`` — branch to ``L`` when ``e`` is non-zero."""

    cond: Expr
    label: str
    span: Span = DUMMY_SPAN

    def __str__(self) -> str:
        return f"if {self.cond} then {self.label}"


@dataclass(frozen=True, slots=True)
class SIfUnboxed:
    """``if unboxed(x) then L`` (from ``Is_long``); fall-through is boxed."""

    var: str
    label: str
    span: Span = DUMMY_SPAN

    def __str__(self) -> str:
        return f"if unboxed({self.var}) then {self.label}"


@dataclass(frozen=True, slots=True)
class SIfSumTag:
    """``if sum_tag(x) == n then L`` (from ``Tag_val`` comparisons)."""

    var: str
    tag: int
    label: str
    span: Span = DUMMY_SPAN

    def __str__(self) -> str:
        return f"if sum_tag({self.var}) == {self.tag} then {self.label}"


@dataclass(frozen=True, slots=True)
class SIfIntTag:
    """``if int_tag(x) == n then L`` (from ``Int_val`` comparisons)."""

    var: str
    tag: int
    label: str
    span: Span = DUMMY_SPAN

    def __str__(self) -> str:
        return f"if int_tag({self.var}) == {self.tag} then {self.label}"


@dataclass(frozen=True, slots=True)
class SNop:
    """A no-op; exists to give labels a statement to hang on."""

    span: Span = DUMMY_SPAN

    def __str__(self) -> str:
        return "nop"


Stmt = Union[
    SAssign, SReturn, SCamlReturn, SGoto, SIf, SIfUnboxed, SIfSumTag, SIfIntTag, SNop
]


# ---------------------------------------------------------------------------
# Declarations, functions, programs
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class VarDecl:
    """``ctype x = e`` at the top of a function."""

    name: str
    ctype: CSrcType
    init: Optional[Rhs] = None
    span: Span = DUMMY_SPAN

    def __str__(self) -> str:
        init = f" = {self.init}" if self.init is not None else ""
        return f"{self.ctype} {self.name}{init}"


@dataclass(frozen=True, slots=True)
class ProtectDecl:
    """``CAMLprotect(x)`` — formalizes CAMLparam/CAMLlocal (paper §3.2)."""

    name: str
    span: Span = DUMMY_SPAN

    def __str__(self) -> str:
        return f"CAMLprotect({self.name})"


Decl = Union[VarDecl, ProtectDecl]


@dataclass(slots=True)
class FunctionIR:
    """One C function lowered to the Figure 5 shape."""

    name: str
    params: list[tuple[str, CSrcType]]
    return_type: CSrcType
    decls: list[Decl] = field(default_factory=list)
    body: list[Stmt] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    span: Span = DUMMY_SPAN
    is_definition: bool = True
    #: set for functions hand-annotated as polymorphic (paper §5.1)
    polymorphic: bool = False

    def label_index(self, label: str) -> int:
        if label not in self.labels:
            raise KeyError(f"undefined label `{label}` in `{self.name}`")
        return self.labels[label]

    @property
    def protected_names(self) -> list[str]:
        return [d.name for d in self.decls if isinstance(d, ProtectDecl)]

    @property
    def local_decls(self) -> list[VarDecl]:
        return [d for d in self.decls if isinstance(d, VarDecl)]

    def pretty(self) -> str:
        lines = [
            f"function {self.return_type} {self.name}("
            + ", ".join(f"{t} {n}" for n, t in self.params)
            + ")"
        ]
        for decl in self.decls:
            lines.append(f"  {decl};")
        index_to_labels: dict[int, list[str]] = {}
        for label, index in self.labels.items():
            index_to_labels.setdefault(index, []).append(label)
        for index, stmt in enumerate(self.body):
            for label in index_to_labels.get(index, ()):
                lines.append(f" {label}:")
            lines.append(f"  {stmt};")
        return "\n".join(lines)


@dataclass(slots=True)
class ProgramIR:
    """A lowered translation unit (or several merged ones)."""

    functions: list[FunctionIR] = field(default_factory=list)
    globals: list[VarDecl] = field(default_factory=list)

    def function(self, name: str) -> FunctionIR:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(f"no function named `{name}`")

    def merge(self, other: "ProgramIR") -> "ProgramIR":
        return ProgramIR(
            functions=self.functions + other.functions,
            globals=self.globals + other.globals,
        )


def expr_vars(exp: Union[Expr, CallExp, None]) -> set[str]:
    """Free variables of an expression (for liveness and the GC check)."""
    out: set[str] = set()
    _collect_vars(exp, out)
    return out


def _collect_vars(exp: Union[Expr, CallExp, None], out: set[str]) -> None:
    if exp is None:
        return
    if isinstance(exp, VarExp):
        out.add(exp.name)
    elif isinstance(exp, AddrOf):
        out.add(exp.name)
    elif isinstance(exp, Deref):
        _collect_vars(exp.exp, out)
    elif isinstance(exp, AOp):
        _collect_vars(exp.left, out)
        _collect_vars(exp.right, out)
    elif isinstance(exp, PtrAdd):
        _collect_vars(exp.base, out)
        _collect_vars(exp.offset, out)
    elif isinstance(exp, (CastExp, ValIntExp, IntValExp)):
        _collect_vars(exp.exp, out)
    elif isinstance(exp, CallExp):
        for arg in exp.args:
            _collect_vars(arg, out)
        if exp.is_indirect:
            out.add(exp.func)
