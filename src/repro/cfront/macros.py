"""Knowledge base for the OCaml FFI macros and runtime entry points.

The lowering recognizes the macro family of ``caml/mlvalues.h`` and
``caml/memory.h`` syntactically (the paper's tool does the same via pattern
matching on CIL, §5.1), and the checker seeds its function environment with
the runtime's entry points, each carrying its GC effect.  Allocation,
callback and exception-raising functions may trigger a collection; pure
accessors may not.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.environment import Entry
from ..seeds import seed_table
from ..core.types import (
    C_INT,
    C_VOID,
    CFun,
    CPtr,
    CStruct,
    CType,
    CValue,
    GC,
    GCEffect,
    MTCustom,
    NOGC,
    fresh_mt,
)

# -- value-constant macros ----------------------------------------------------

#: Object-like macros that expand to ``Val_int(n)``.
VALUE_CONSTANTS: dict[str, int] = {
    "Val_unit": 0,
    "Val_false": 0,
    "Val_true": 1,
    "Val_none": 0,
    "Val_emptylist": 0,
    "Val_int_zero": 0,
}

#: Macros equivalent to ``Val_int`` / ``Int_val`` respectively.
VAL_OF_INT_MACROS = {"Val_int", "Val_long", "Val_bool"}
INT_OF_VAL_MACROS = {"Int_val", "Long_val", "Bool_val"}

#: Dynamic test macros (paper Figure 5 primitives).
IS_LONG_MACROS = {"Is_long"}
IS_BLOCK_MACROS = {"Is_block"}
TAG_VAL_MACROS = {"Tag_val"}

#: Structured-block access macros.
FIELD_MACROS = {"Field"}
STORE_FIELD_MACROS = {"Store_field"}

#: GC registration macros: name -> number of registered variables
#: (None means "count the arguments").
CAMLPARAM_MACROS = {
    "CAMLparam0": 0,
    "CAMLparam1": 1,
    "CAMLparam2": 2,
    "CAMLparam3": 3,
    "CAMLparam4": 4,
    "CAMLparam5": 5,
    "CAMLxparam1": 1,
    "CAMLxparam2": 2,
    "CAMLxparam3": 3,
    "CAMLxparam4": 4,
    "CAMLxparam5": 5,
}
CAMLLOCAL_MACROS = {
    "CAMLlocal1": 1,
    "CAMLlocal2": 2,
    "CAMLlocal3": 3,
    "CAMLlocal4": 4,
    "CAMLlocal5": 5,
}
CAMLRETURN_MACROS = {"CAMLreturn", "CAMLreturnT"}
CAMLRETURN0_MACROS = {"CAMLreturn0"}


# -- runtime entry point signatures ---------------------------------------------


@dataclass(frozen=True)
class BuiltinSpec:
    """Shape of one runtime function, in a tiny spec language.

    Parameter/result kinds:
      ``value``     fresh ``α value`` (instantiated per call site)
      ``int``       C scalar
      ``charptr``   ``char *``
      ``voidptr``   generic pointer (modelled as ``int *``)
      ``valueptr``  ``value *`` (registered roots)
      ``string``    a ``caml_string`` custom block value
      ``float``     a ``caml_float`` custom block value
      ``int32/int64/nativeint``  their custom block values
      ``void``      (result only)
    """

    params: tuple[str, ...]
    result: str
    effect: GCEffect


def _kind_to_ct(kind: str) -> CType:
    if kind == "value":
        return CValue(fresh_mt())
    if kind == "int":
        return C_INT
    if kind == "charptr" or kind == "voidptr":
        return CPtr(C_INT)
    if kind == "valueptr":
        return CPtr(CValue(fresh_mt()))
    if kind in ("string", "float", "int32", "int64", "nativeint"):
        return CValue(MTCustom(CPtr(CStruct(f"caml_{kind}" if kind != "string" else "caml_string"))))
    if kind == "void":
        return C_VOID
    raise ValueError(f"unknown builtin kind `{kind}`")


def spec_to_cfun(spec: BuiltinSpec) -> CFun:
    """Materialize a spec with fresh type variables."""
    return CFun(
        params=tuple(_kind_to_ct(k) for k in spec.params),
        result=_kind_to_ct(spec.result),
        effect=spec.effect,
    )


#: The OCaml runtime API surface used by glue code.  Allocators, callbacks
#: and raisers are ``gc``; accessors and root registration are ``nogc``.
RUNTIME_FUNCTIONS: dict[str, BuiltinSpec] = {
    # allocation
    "caml_alloc": BuiltinSpec(("int", "int"), "value", GC),
    "caml_alloc_small": BuiltinSpec(("int", "int"), "value", GC),
    "caml_alloc_tuple": BuiltinSpec(("int",), "value", GC),
    "caml_alloc_string": BuiltinSpec(("int",), "string", GC),
    "caml_alloc_custom": BuiltinSpec(("voidptr", "int", "int", "int"), "value", GC),
    "caml_copy_string": BuiltinSpec(("charptr",), "string", GC),
    "caml_copy_double": BuiltinSpec(("int",), "float", GC),
    "caml_copy_int32": BuiltinSpec(("int",), "int32", GC),
    "caml_copy_int64": BuiltinSpec(("int",), "int64", GC),
    "caml_copy_nativeint": BuiltinSpec(("int",), "nativeint", GC),
    # legacy (pre-3.08) unprefixed aliases still common in 2004-era glue
    "alloc": BuiltinSpec(("int", "int"), "value", GC),
    "alloc_small": BuiltinSpec(("int", "int"), "value", GC),
    "alloc_tuple": BuiltinSpec(("int",), "value", GC),
    "copy_string": BuiltinSpec(("charptr",), "string", GC),
    "copy_double": BuiltinSpec(("int",), "float", GC),
    # callbacks re-enter the mutator: anything can happen, including GC
    "caml_callback": BuiltinSpec(("value", "value"), "value", GC),
    "caml_callback2": BuiltinSpec(("value", "value", "value"), "value", GC),
    "caml_callback3": BuiltinSpec(("value", "value", "value", "value"), "value", GC),
    "caml_callback_exn": BuiltinSpec(("value", "value"), "value", GC),
    # exceptions allocate their payload
    "caml_failwith": BuiltinSpec(("charptr",), "void", GC),
    "caml_invalid_argument": BuiltinSpec(("charptr",), "void", GC),
    "caml_raise_out_of_memory": BuiltinSpec((), "void", GC),
    "caml_raise_not_found": BuiltinSpec((), "void", GC),
    "failwith": BuiltinSpec(("charptr",), "void", GC),
    "invalid_argument": BuiltinSpec(("charptr",), "void", GC),
    # accessors — no allocation
    "caml_string_length": BuiltinSpec(("string",), "int", NOGC),
    "string_length": BuiltinSpec(("string",), "int", NOGC),
    "caml_string_val": BuiltinSpec(("string",), "charptr", NOGC),
    "caml_double_val": BuiltinSpec(("float",), "int", NOGC),
    "caml_int32_val": BuiltinSpec(("int32",), "int", NOGC),
    "caml_int64_val": BuiltinSpec(("int64",), "int", NOGC),
    "caml_nativeint_val": BuiltinSpec(("nativeint",), "int", NOGC),
    "caml_wosize_val": BuiltinSpec(("value",), "int", NOGC),
    "caml_tag_val": BuiltinSpec(("value",), "int", NOGC),
    "caml_is_long": BuiltinSpec(("value",), "int", NOGC),
    # heap writes and initialization
    "caml_modify": BuiltinSpec(("valueptr", "value"), "void", NOGC),
    "caml_initialize": BuiltinSpec(("valueptr", "value"), "void", NOGC),
    # roots
    "caml_register_global_root": BuiltinSpec(("valueptr",), "void", NOGC),
    "caml_remove_global_root": BuiltinSpec(("valueptr",), "void", NOGC),
    "caml_named_value": BuiltinSpec(("charptr",), "valueptr", NOGC),
    # misc runtime services
    "caml_enter_blocking_section": BuiltinSpec((), "void", NOGC),
    "caml_leave_blocking_section": BuiltinSpec((), "void", NOGC),
    "caml_stat_alloc": BuiltinSpec(("int",), "voidptr", NOGC),
    "caml_stat_free": BuiltinSpec(("voidptr",), "void", NOGC),
}

#: Accessor macros rewritten to builtin calls by the lowering:
#: macro name -> builtin function name.
ACCESSOR_MACROS: dict[str, str] = {
    "String_val": "caml_string_val",
    "Bytes_val": "caml_string_val",
    "Double_val": "caml_double_val",
    "Int32_val": "caml_int32_val",
    "Int64_val": "caml_int64_val",
    "Nativeint_val": "caml_nativeint_val",
    "Wosize_val": "caml_wosize_val",
    "string_length": "caml_string_length",
}


@seed_table("ocaml.builtin_entries")
def builtin_entries() -> dict[str, Entry]:
    """The function-environment entries for every runtime entry point.

    Memoized in the central seed store (see :mod:`repro.seeds`; per
    process since PR 5): all builtins are treated polymorphically
    (instantiated with fresh variables at every call site via
    ``instantiate_ct``), and variable *bindings* live in each run's own
    :class:`~repro.core.unify.Unifier`, so sharing the canonical entries
    across analysis runs cannot leak inference state between programs.
    Callers must treat the returned mapping as read-only.
    """
    return {
        name: Entry(spec_to_cfun(spec))
        for name, spec in RUNTIME_FUNCTIONS.items()
    }


#: Builtins whose types must be instantiated afresh at every call site.
POLYMORPHIC_BUILTINS: frozenset[str] = frozenset(RUNTIME_FUNCTIONS)

#: Allocators whose result is a fresh block at offset 0 with a known tag:
#: the value is the argument index holding the tag, or a literal tag.
#: This is what lets `b = caml_alloc(n, t); Store_field(b, i, v)` check
#: precisely — the paper's benchmarks use the idiom everywhere.
ALLOC_RESULT_TAG: dict[str, int | str] = {
    "caml_alloc": "arg1",
    "caml_alloc_small": "arg1",
    "alloc": "arg1",
    "alloc_small": "arg1",
    "caml_alloc_tuple": 0,
    "alloc_tuple": 0,
}


def is_ffi_macro(name: str) -> bool:
    """True when the lowering gives this identifier special meaning."""
    return (
        name in VALUE_CONSTANTS
        or name in VAL_OF_INT_MACROS
        or name in INT_OF_VAL_MACROS
        or name in IS_LONG_MACROS
        or name in IS_BLOCK_MACROS
        or name in TAG_VAL_MACROS
        or name in FIELD_MACROS
        or name in STORE_FIELD_MACROS
        or name in CAMLPARAM_MACROS
        or name in CAMLLOCAL_MACROS
        or name in CAMLRETURN_MACROS
        or name in CAMLRETURN0_MACROS
        or name in ACCESSOR_MACROS
    )
