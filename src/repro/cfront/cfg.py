"""Control-flow graph over the Figure 5 IR.

The checker's fixpoint walks the statement list directly (as the paper's
rules do), but a basic-block view is useful for diagnostics and tooling:
reachability (dead code produced by early returns), edge enumeration for
visualization, and a sanity pass run by the test suite over every lowered
function — every branch target must begin a block, every non-terminated
block must fall through to the next.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Set

from .ir import (
    FunctionIR,
    SCamlReturn,
    SGoto,
    SIf,
    SIfIntTag,
    SIfSumTag,
    SIfUnboxed,
    SReturn,
    Stmt,
)

_BRANCHES = (SIf, SIfUnboxed, SIfSumTag, SIfIntTag)
_TERMINATORS = (SReturn, SCamlReturn, SGoto)


def statement_successors(fn: FunctionIR, index: int) -> List[int]:
    """Successor statement indices of ``fn.body[index]``."""
    stmt = fn.body[index]
    succs: List[int] = []
    if isinstance(stmt, (SReturn, SCamlReturn)):
        return succs
    if isinstance(stmt, SGoto):
        succs.append(fn.label_index(stmt.label))
        return succs
    if isinstance(stmt, _BRANCHES):
        succs.append(fn.label_index(stmt.label))
    if index + 1 < len(fn.body):
        succs.append(index + 1)
    return succs


@dataclass
class BasicBlock:
    """A maximal straight-line run of statements."""

    index: int
    start: int
    end: int  # exclusive
    successors: List[int] = field(default_factory=list)
    predecessors: List[int] = field(default_factory=list)

    def statements(self, fn: FunctionIR) -> List[Stmt]:
        return fn.body[self.start : self.end]

    def __len__(self) -> int:
        return self.end - self.start


@dataclass
class CFG:
    """Basic blocks plus edges for one function."""

    fn: FunctionIR
    blocks: List[BasicBlock] = field(default_factory=list)
    _block_of_stmt: Dict[int, int] = field(default_factory=dict)

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    def block_at(self, stmt_index: int) -> BasicBlock:
        return self.blocks[self._block_of_stmt[stmt_index]]

    def edges(self) -> Iterator[tuple[int, int]]:
        for block in self.blocks:
            for succ in block.successors:
                yield block.index, succ

    def reachable_blocks(self) -> Set[int]:
        if not self.blocks:
            return set()
        seen: Set[int] = set()
        stack = [0]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.blocks[current].successors)
        return seen

    def unreachable_statements(self) -> List[int]:
        """Statement indices never executed (lowering artifacts included)."""
        reachable = self.reachable_blocks()
        dead: List[int] = []
        for block in self.blocks:
            if block.index not in reachable:
                dead.extend(range(block.start, block.end))
        return dead

    def to_dot(self) -> str:
        """GraphViz rendering for debugging."""
        lines = [f'digraph "{self.fn.name}" {{']
        for block in self.blocks:
            body = "\\l".join(
                str(s) for s in block.statements(self.fn)
            )
            lines.append(f'  b{block.index} [shape=box,label="{body}\\l"];')
        for src, dst in self.edges():
            lines.append(f"  b{src} -> b{dst};")
        lines.append("}")
        return "\n".join(lines)


def build_cfg(fn: FunctionIR) -> CFG:
    """Partition the body into basic blocks and wire the edges."""
    count = len(fn.body)
    if count == 0:
        return CFG(fn=fn)

    # leaders: entry, branch targets, and fall-throughs of branch/terminator
    leaders: Set[int] = {0}
    for index in range(count):
        stmt = fn.body[index]
        if isinstance(stmt, _BRANCHES):
            leaders.add(fn.label_index(stmt.label))
            if index + 1 < count:
                leaders.add(index + 1)
        elif isinstance(stmt, SGoto):
            leaders.add(fn.label_index(stmt.label))
            if index + 1 < count:
                leaders.add(index + 1)
        elif isinstance(stmt, (SReturn, SCamlReturn)):
            if index + 1 < count:
                leaders.add(index + 1)
    for target in fn.labels.values():
        if target < count:
            leaders.add(target)

    starts = sorted(leaders)
    cfg = CFG(fn=fn)
    for block_index, start in enumerate(starts):
        end = starts[block_index + 1] if block_index + 1 < len(starts) else count
        block = BasicBlock(index=block_index, start=start, end=end)
        cfg.blocks.append(block)
        for stmt_index in range(start, end):
            cfg._block_of_stmt[stmt_index] = block_index

    for block in cfg.blocks:
        last = block.end - 1
        for succ_stmt in statement_successors(fn, last):
            succ_block = cfg._block_of_stmt[succ_stmt]
            if succ_block not in block.successors:
                block.successors.append(succ_block)
                cfg.blocks[succ_block].predecessors.append(block.index)
    return cfg


def check_wellformed(fn: FunctionIR) -> List[str]:
    """Structural sanity of lowered IR; empty list means well-formed."""
    problems: List[str] = []
    for label, index in fn.labels.items():
        if not 0 <= index <= len(fn.body):
            problems.append(f"label {label} points outside the body")
    for index, stmt in enumerate(fn.body):
        if isinstance(stmt, (_BRANCHES, SGoto).__class__):
            pass
        if isinstance(stmt, _BRANCHES) or isinstance(stmt, SGoto):
            if stmt.label not in fn.labels:
                problems.append(
                    f"statement {index} branches to undefined label "
                    f"`{stmt.label}`"
                )
    return problems
