"""Lowering from the C AST to the Figure 5 IR, in the style of CIL.

Structured control flow becomes labels and conditional branches; the OCaml
FFI macros become the IR's primitives:

* ``Is_long(x)`` / ``Is_block(x)`` in conditions → ``if_unboxed``,
* ``Tag_val(x) == n`` / ``switch (Tag_val(x))`` → ``if_sum_tag``,
* ``Int_val(x) == n`` / ``switch (Int_val(x))`` → ``if_int_tag``,
* ``Field(x, i)`` → ``*(x +p i)`` (read) or a heap store (write),
* ``CAMLparam``/``CAMLlocal`` → ``CAMLprotect`` declarations,
* ``CAMLreturn`` → the IR's ``CAMLreturn``.

Calls are not expressions in the IR, so embedded calls are extracted into
fresh temporaries typed by the callee's declared return type.  Short-
circuit conditions are compiled branch-wise so that tag tests guarded by
``&&``/``||`` still refine the environment, e.g.
``if (Is_block(v) && Tag_val(v) == 0) ...``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..seeds import seed_table
from ..core.srctypes import CSrcFun, CSrcPtr, CSrcScalar, CSrcType, CSrcValue, CSrcVoid
from ..source import DUMMY_SPAN, Span
from . import ast, ir
from .macros import (
    ACCESSOR_MACROS,
    CAMLLOCAL_MACROS,
    CAMLPARAM_MACROS,
    CAMLRETURN0_MACROS,
    CAMLRETURN_MACROS,
    FIELD_MACROS,
    INT_OF_VAL_MACROS,
    IS_BLOCK_MACROS,
    IS_LONG_MACROS,
    RUNTIME_FUNCTIONS,
    STORE_FIELD_MACROS,
    TAG_VAL_MACROS,
    VAL_OF_INT_MACROS,
    VALUE_CONSTANTS,
)

WORD_SIZE = 8


class LoweringError(Exception):
    def __init__(self, message: str, span: Span = DUMMY_SPAN):
        self.span = span
        super().__init__(f"{span}: {message}")


def _kind_to_src(kind: str) -> CSrcType:
    if kind == "value":
        return CSrcValue()
    if kind == "int":
        return CSrcScalar("int")
    if kind in ("charptr", "voidptr"):
        return CSrcPtr(CSrcScalar("char"))
    if kind == "valueptr":
        return CSrcPtr(CSrcValue())
    if kind in ("string", "float", "int32", "int64", "nativeint"):
        return CSrcValue()
    if kind == "void":
        return CSrcVoid()
    raise ValueError(kind)


@seed_table("ocaml.base_tables")
def _base_tables() -> tuple[dict[str, CSrcType], dict[str, list[CSrcType]]]:
    """The runtime-function tables (PR 5): identical for every unit, so
    they are built once per process and copied per SymbolTable."""
    returns = {
        name: _kind_to_src(spec.result)
        for name, spec in RUNTIME_FUNCTIONS.items()
    }
    params = {
        name: [_kind_to_src(k) for k in spec.params]
        for name, spec in RUNTIME_FUNCTIONS.items()
    }
    return returns, params


@dataclass
class SymbolTable:
    """Return/param types of every function visible to the lowering."""

    returns: dict[str, CSrcType] = field(default_factory=dict)
    fn_param_types: dict[str, list[CSrcType]] = field(default_factory=dict)

    @classmethod
    def for_unit(
        cls,
        unit: ast.TranslationUnit,
        extra_returns: Optional[dict[str, CSrcType]] = None,
    ) -> "SymbolTable":
        base_returns, base_params = _base_tables()
        table = cls(dict(base_returns), dict(base_params))
        if extra_returns:
            # dialect runtime tables (e.g. the CPython C API) so embedded
            # calls land in temporaries of the right surface type
            table.returns.update(extra_returns)
        for func in unit.functions:
            table.returns[func.name] = func.return_type
            table.fn_param_types[func.name] = [t for _, t in func.params]
        return table

    def return_type(self, name: str) -> CSrcType:
        return self.returns.get(name, CSrcScalar("int"))


class FunctionLowerer:
    def __init__(self, func: ast.FunctionDef, symbols: SymbolTable):
        self.func = func
        self.symbols = symbols
        self.stmts: list[ir.Stmt] = []
        self.labels: dict[str, int] = {}
        self.pending_labels: list[str] = []
        self.decls: list[ir.Decl] = []
        self.var_types: dict[str, CSrcType] = dict(func.params)
        self.temp_count = 0
        self.label_count = 0
        #: (continue_target, break_target) stack
        self.loops: list[tuple[Optional[str], str]] = []

    # -- emission helpers -------------------------------------------------------

    def emit(self, stmt: ir.Stmt) -> None:
        index = len(self.stmts)
        for label in self.pending_labels:
            self.labels[label] = index
        self.pending_labels.clear()
        self.stmts.append(stmt)

    def place(self, label: str) -> None:
        self.pending_labels.append(label)

    def new_label(self, hint: str) -> str:
        self.label_count += 1
        return f"__{hint}_{self.label_count}"

    def new_temp(self, ctype: CSrcType, span: Span) -> str:
        self.temp_count += 1
        name = f"__t{self.temp_count}"
        self.decls.append(ir.VarDecl(name=name, ctype=ctype, init=None, span=span))
        self.var_types[name] = ctype
        return name

    def declare(self, decl: ast.Declaration) -> None:
        self.decls.append(
            ir.VarDecl(name=decl.name, ctype=decl.ctype, init=None, span=decl.span)
        )
        self.var_types[decl.name] = decl.ctype

    # -- static C types (to tell pointer arithmetic from integer arithmetic) ----

    def static_type(self, exp: ir.Expr) -> Optional[CSrcType]:
        if isinstance(exp, ir.IntLit):
            return CSrcScalar("int")
        if isinstance(exp, ir.StrLit):
            return CSrcPtr(CSrcScalar("char"))
        if isinstance(exp, ir.VarExp):
            return self.var_types.get(exp.name)
        if isinstance(exp, ir.Deref):
            inner = self.static_type(exp.exp)
            if isinstance(inner, CSrcPtr):
                return inner.target
            if isinstance(inner, CSrcValue):
                return CSrcValue()  # Field access yields another value
            return None
        if isinstance(exp, ir.AOp):
            return CSrcScalar("int")
        if isinstance(exp, ir.PtrAdd):
            return self.static_type(exp.base)
        if isinstance(exp, ir.CastExp):
            return exp.ctype
        if isinstance(exp, ir.ValIntExp):
            return CSrcValue()
        if isinstance(exp, ir.IntValExp):
            return CSrcScalar("int")
        if isinstance(exp, ir.AddrOf):
            target = self.var_types.get(exp.name)
            return CSrcPtr(target) if target is not None else None
        return None

    def _is_pointerish(self, exp: ir.Expr) -> bool:
        ctype = self.static_type(exp)
        return isinstance(ctype, (CSrcPtr, CSrcValue, CSrcFun))

    # -- expression lowering ------------------------------------------------------

    def lower_expr(self, exp: ast.CExpr) -> ir.Expr:
        if isinstance(exp, ast.Num):
            return ir.IntLit(exp.value, exp.span)
        if isinstance(exp, ast.Str):
            return ir.StrLit(exp.value, exp.span)
        if isinstance(exp, ast.SizeOf):
            return ir.IntLit(WORD_SIZE, exp.span)
        if isinstance(exp, ast.Name):
            if exp.ident in VALUE_CONSTANTS:
                return ir.ValIntExp(
                    ir.IntLit(VALUE_CONSTANTS[exp.ident], exp.span), exp.span
                )
            return ir.VarExp(exp.ident, exp.span)
        if isinstance(exp, ast.Unary):
            return self._lower_unary(exp)
        if isinstance(exp, ast.Binary):
            return self._lower_binary(exp)
        if isinstance(exp, ast.Conditional):
            return self._lower_conditional(exp)
        if isinstance(exp, ast.Cast):
            return self._lower_cast(exp)
        if isinstance(exp, ast.Call):
            return self._lower_call_expr(exp)
        if isinstance(exp, ast.Index):
            base = self.lower_expr(exp.base)
            index = self.lower_expr(exp.index)
            return ir.Deref(ir.PtrAdd(base, index, exp.span), exp.span)
        if isinstance(exp, ast.Member):
            return self._lower_member(exp)
        if isinstance(exp, ast.Assign):
            self.lower_assign(exp)
            return self._lval_as_expr(exp.target)
        if isinstance(exp, ast.IncDec):
            self._lower_incdec(exp)
            return self._lval_as_expr(exp.target)
        raise LoweringError(f"unsupported expression `{exp}`", getattr(exp, "span", DUMMY_SPAN))

    def _lower_unary(self, exp: ast.Unary) -> ir.Expr:
        if exp.op == "*":
            return ir.Deref(self.lower_expr(exp.operand), exp.span)
        if exp.op == "&":
            operand = exp.operand
            if isinstance(operand, ast.Name):
                return ir.AddrOf(operand.ident, exp.span)
            if isinstance(operand, ast.Index):
                return ir.PtrAdd(
                    self.lower_expr(operand.base),
                    self.lower_expr(operand.index),
                    exp.span,
                )
            raise LoweringError("unsupported address-of operand", exp.span)
        inner = self.lower_expr(exp.operand)
        if exp.op == "!":
            return ir.AOp("==", inner, ir.IntLit(0, exp.span), exp.span)
        if exp.op == "~":
            return ir.AOp("^", inner, ir.IntLit(-1, exp.span), exp.span)
        if exp.op == "-":
            return ir.AOp("-", ir.IntLit(0, exp.span), inner, exp.span)
        raise LoweringError(f"unsupported unary `{exp.op}`", exp.span)

    def _lower_binary(self, exp: ast.Binary) -> ir.Expr:
        if exp.op in ("&&", "||"):
            # value-producing short-circuit: compile through a temporary
            return self._lower_conditional(
                ast.Conditional(
                    cond=exp,
                    then=ast.Num(1, exp.span),
                    other=ast.Num(0, exp.span),
                    span=exp.span,
                )
            )
        left = self.lower_expr(exp.left)
        right = self.lower_expr(exp.right)
        if exp.op in ("+", "-"):
            if self._is_pointerish(left) and not self._is_pointerish(right):
                offset = (
                    right
                    if exp.op == "+"
                    else ir.AOp("-", ir.IntLit(0, exp.span), right, exp.span)
                )
                return ir.PtrAdd(left, offset, exp.span)
            if self._is_pointerish(right) and exp.op == "+":
                return ir.PtrAdd(right, left, exp.span)
        return ir.AOp(exp.op, left, right, exp.span)

    def _lower_conditional(self, exp: ast.Conditional) -> ir.Expr:
        then_probe = self.lower_expr(exp.then)  # for its static type only
        temp_type = self.static_type(then_probe) or CSrcScalar("int")
        temp = self.new_temp(temp_type, exp.span)
        label_true = self.new_label("cond_t")
        label_false = self.new_label("cond_f")
        label_end = self.new_label("cond_end")
        self.lower_cond(exp.cond, label_true, label_false)
        self.place(label_true)
        self.emit(
            ir.SAssign(ir.VarExp(temp, exp.span), self.lower_expr(exp.then), exp.span)
        )
        self.emit(ir.SGoto(label_end, exp.span))
        self.place(label_false)
        self.emit(
            ir.SAssign(ir.VarExp(temp, exp.span), self.lower_expr(exp.other), exp.span)
        )
        self.place(label_end)
        self.emit(ir.SNop(exp.span))
        return ir.VarExp(temp, exp.span)

    def _lower_cast(self, exp: ast.Cast) -> ir.Expr:
        inner = self.lower_expr(exp.operand)
        # (value *) applied to a value is CIL-transparent: the IR treats
        # values directly as pointers (paper §3.2).
        if isinstance(exp.ctype, CSrcPtr) and isinstance(exp.ctype.target, CSrcValue):
            if isinstance(self.static_type(inner), CSrcValue):
                return inner
        return ir.CastExp(exp.ctype, inner, exp.span)

    def _lower_member(self, exp: ast.Member) -> ir.Expr:
        base = self.lower_expr(exp.base)
        if exp.arrow:
            base = ir.Deref(base, exp.span)
        # Struct fields are opaque scalars to the analysis.
        return ir.CastExp(CSrcScalar("int"), base, exp.span)

    # -- calls ------------------------------------------------------------------------

    def _macro_rewrite(self, name: str, exp: ast.Call) -> Optional[ir.Expr]:
        """Rewrite FFI macros that stay expressions."""
        args = exp.args
        if name in VAL_OF_INT_MACROS and len(args) == 1:
            return ir.ValIntExp(self.lower_expr(args[0]), exp.span)
        if name in INT_OF_VAL_MACROS and len(args) == 1:
            return ir.IntValExp(self.lower_expr(args[0]), exp.span)
        if name in FIELD_MACROS and len(args) == 2:
            base = self.lower_expr(args[0])
            index = self.lower_expr(args[1])
            return ir.Deref(ir.PtrAdd(base, index, exp.span), exp.span)
        if name in ACCESSOR_MACROS:
            return self._emit_call_to_temp(
                ir.CallExp(
                    ACCESSOR_MACROS[name],
                    tuple(self.lower_expr(a) for a in args),
                    exp.span,
                ),
                exp.span,
            )
        if name in TAG_VAL_MACROS and len(args) == 1:
            return self._emit_call_to_temp(
                ir.CallExp("caml_tag_val", (self.lower_expr(args[0]),), exp.span),
                exp.span,
            )
        if name in IS_LONG_MACROS and len(args) == 1:
            return self._emit_call_to_temp(
                ir.CallExp("caml_is_long", (self.lower_expr(args[0]),), exp.span),
                exp.span,
            )
        if name in IS_BLOCK_MACROS and len(args) == 1:
            temp = self._emit_call_to_temp(
                ir.CallExp("caml_is_long", (self.lower_expr(args[0]),), exp.span),
                exp.span,
            )
            return ir.AOp("==", temp, ir.IntLit(0, exp.span), exp.span)
        return None

    def _lower_call_expr(self, exp: ast.Call) -> ir.Expr:
        if not isinstance(exp.func, ast.Name):
            raise LoweringError("unsupported call target", exp.span)
        name = exp.func.ident
        rewritten = self._macro_rewrite(name, exp)
        if rewritten is not None:
            return rewritten
        call = self._build_call(name, exp)
        return self._emit_call_to_temp(call, exp.span)

    def _build_call(self, name: str, exp: ast.Call) -> ir.CallExp:
        args = tuple(self.lower_expr(a) for a in exp.args)
        target = self.var_types.get(name)
        is_indirect = isinstance(target, CSrcFun) or (
            isinstance(target, CSrcPtr) and isinstance(target.target, CSrcFun)
        )
        return ir.CallExp(name, args, exp.span, is_indirect=is_indirect)

    def _emit_call_to_temp(self, call: ir.CallExp, span: Span) -> ir.Expr:
        result_type = self.symbols.return_type(call.func)
        if call.is_indirect:
            target = self.var_types.get(call.func)
            if isinstance(target, CSrcPtr) and isinstance(target.target, CSrcFun):
                result_type = target.target.result
            elif isinstance(target, CSrcFun):
                result_type = target.result
        temp = self.new_temp(result_type, span)
        self.emit(ir.SAssign(ir.VarExp(temp, span), call, span))
        return ir.VarExp(temp, span)

    # -- assignment lowering ----------------------------------------------------------

    def _lval_as_expr(self, target: ast.CExpr) -> ir.Expr:
        if isinstance(target, ast.Name):
            return ir.VarExp(target.ident, target.span)
        return self.lower_expr(target)

    def lower_assign(self, exp: ast.Assign) -> None:
        rhs: ir.Rhs
        if exp.op:
            # compound assignment: x += e  →  x = x + e
            expanded = ast.Binary(
                op=exp.op, left=exp.target, right=exp.value, span=exp.span
            )
            rhs = self.lower_expr(expanded)
        elif isinstance(exp.value, ast.Call) and self._is_plain_call(exp.value):
            assert isinstance(exp.value.func, ast.Name)
            rhs = self._build_call(exp.value.func.ident, exp.value)
        else:
            rhs = self.lower_expr(exp.value)
        lval = self._lower_lval(exp.target)
        self.emit(ir.SAssign(lval, rhs, exp.span))

    def _is_plain_call(self, exp: ast.Call) -> bool:
        """A call that is not one of the rewritten FFI macros."""
        if not isinstance(exp.func, ast.Name):
            return False
        name = exp.func.ident
        return not (
            name in VAL_OF_INT_MACROS
            or name in INT_OF_VAL_MACROS
            or name in FIELD_MACROS
            or name in ACCESSOR_MACROS
            or name in TAG_VAL_MACROS
            or name in IS_LONG_MACROS
            or name in IS_BLOCK_MACROS
            or name in VALUE_CONSTANTS
        )

    def _lower_lval(self, target: ast.CExpr) -> Optional[ir.Lval]:
        if isinstance(target, ast.Name):
            return ir.VarExp(target.ident, target.span)
        if isinstance(target, ast.Unary) and target.op == "*":
            return ir.MemLval(self.lower_expr(target.operand), 0, target.span)
        if isinstance(target, ast.Index):
            base = self.lower_expr(target.base)
            index = self.lower_expr(target.index)
            if isinstance(index, ir.IntLit):
                return ir.MemLval(base, index.value, target.span)
            return ir.MemLval(ir.PtrAdd(base, index, target.span), 0, target.span)
        if isinstance(target, ast.Call) and isinstance(target.func, ast.Name):
            if target.func.ident in FIELD_MACROS and len(target.args) == 2:
                base = self.lower_expr(target.args[0])
                index = self.lower_expr(target.args[1])
                if isinstance(index, ir.IntLit):
                    return ir.MemLval(base, index.value, target.span)
                return ir.MemLval(ir.PtrAdd(base, index, target.span), 0, target.span)
        if isinstance(target, ast.Member):
            # struct stores are outside the model; evaluate and discard
            return None
        raise LoweringError(f"unsupported assignment target", target.span)

    def _lower_incdec(self, exp: ast.IncDec) -> None:
        op = "+" if exp.op == "++" else "-"
        self.lower_assign(
            ast.Assign(
                op=op,
                target=exp.target,
                value=ast.Num(1, exp.span),
                span=exp.span,
            )
        )

    # -- condition lowering --------------------------------------------------------------

    def _value_var_for(self, exp: ast.CExpr, span: Span) -> str:
        """A variable naming an OCaml value for the primitive tests."""
        lowered = self.lower_expr(exp)
        if isinstance(lowered, ir.VarExp):
            return lowered.name
        temp = self.new_temp(CSrcValue(), span)
        self.emit(ir.SAssign(ir.VarExp(temp, span), lowered, span))
        return temp

    @staticmethod
    def _as_macro_call(exp: ast.CExpr, names: set[str]) -> Optional[ast.Call]:
        if (
            isinstance(exp, ast.Call)
            and isinstance(exp.func, ast.Name)
            and exp.func.ident in names
            and len(exp.args) == 1
        ):
            return exp
        return None

    def _tag_comparison(
        self, exp: ast.Binary
    ) -> Optional[tuple[str, str, int, str]]:
        """Match ``Tag_val(x) == n`` / ``Int_val(x) != n`` (either side)."""
        if exp.op not in ("==", "!="):
            return None
        for probe, const in ((exp.left, exp.right), (exp.right, exp.left)):
            if not isinstance(const, ast.Num):
                continue
            call = self._as_macro_call(probe, TAG_VAL_MACROS)
            if call is not None:
                var = self._value_var_for(call.args[0], exp.span)
                return ("sum", var, const.value, exp.op)
            call = self._as_macro_call(probe, INT_OF_VAL_MACROS)
            if call is not None:
                var = self._value_var_for(call.args[0], exp.span)
                return ("int", var, const.value, exp.op)
        return None

    def lower_cond(self, cond: ast.CExpr, label_true: str, label_false: str) -> None:
        """Branch-compile a condition; never falls through."""
        span = getattr(cond, "span", DUMMY_SPAN)
        if isinstance(cond, ast.Unary) and cond.op == "!":
            self.lower_cond(cond.operand, label_false, label_true)
            return
        if isinstance(cond, ast.Binary) and cond.op == "&&":
            mid = self.new_label("and")
            self.lower_cond(cond.left, mid, label_false)
            self.place(mid)
            self.lower_cond(cond.right, label_true, label_false)
            return
        if isinstance(cond, ast.Binary) and cond.op == "||":
            mid = self.new_label("or")
            self.lower_cond(cond.left, label_true, mid)
            self.place(mid)
            self.lower_cond(cond.right, label_true, label_false)
            return
        call = self._as_macro_call(cond, IS_LONG_MACROS)
        if call is not None:
            var = self._value_var_for(call.args[0], span)
            self.emit(ir.SIfUnboxed(var, label_true, span))
            self.emit(ir.SGoto(label_false, span))
            return
        call = self._as_macro_call(cond, IS_BLOCK_MACROS)
        if call is not None:
            var = self._value_var_for(call.args[0], span)
            self.emit(ir.SIfUnboxed(var, label_false, span))
            self.emit(ir.SGoto(label_true, span))
            return
        if isinstance(cond, ast.Binary):
            matched = self._tag_comparison(cond)
            if matched is not None:
                family, var, tag, op = matched
                then_label = label_true if op == "==" else label_false
                else_label = label_false if op == "==" else label_true
                if family == "sum":
                    self.emit(ir.SIfSumTag(var, tag, then_label, span))
                else:
                    self.emit(ir.SIfIntTag(var, tag, then_label, span))
                self.emit(ir.SGoto(else_label, span))
                return
        lowered = self.lower_expr(cond)
        self.emit(ir.SIf(lowered, label_true, span))
        self.emit(ir.SGoto(label_false, span))

    # -- statement lowering -------------------------------------------------------------

    def lower_stmt(self, stmt: ast.CStmtOrDecl) -> None:
        if isinstance(stmt, ast.Declaration):
            self.declare(stmt)
            if isinstance(stmt.init, ast.InitList):
                # aggregate initialization is outside the Figure 5 IR; the
                # declaration itself (and its type) is all the analysis sees
                return
            if stmt.init is not None:
                if isinstance(stmt.init, ast.Call) and self._is_plain_call(stmt.init):
                    assert isinstance(stmt.init.func, ast.Name)
                    rhs: ir.Rhs = self._build_call(stmt.init.func.ident, stmt.init)
                else:
                    rhs = self.lower_expr(stmt.init)
                self.emit(ir.SAssign(ir.VarExp(stmt.name, stmt.span), rhs, stmt.span))
            return
        if isinstance(stmt, ast.Block):
            for item in stmt.items:
                self.lower_stmt(item)
            return
        if isinstance(stmt, ast.ExprStmt):
            self._lower_expr_stmt(stmt)
            return
        if isinstance(stmt, ast.IfStmt):
            self._lower_if(stmt)
            return
        if isinstance(stmt, ast.WhileStmt):
            self._lower_while(stmt)
            return
        if isinstance(stmt, ast.DoWhileStmt):
            self._lower_do_while(stmt)
            return
        if isinstance(stmt, ast.ForStmt):
            self._lower_for(stmt)
            return
        if isinstance(stmt, ast.SwitchStmt):
            self._lower_switch(stmt)
            return
        if isinstance(stmt, ast.ReturnStmt):
            value = self.lower_expr(stmt.value) if stmt.value is not None else None
            self.emit(ir.SReturn(value, stmt.span))
            return
        if isinstance(stmt, ast.GotoStmt):
            self.emit(ir.SGoto(stmt.label, stmt.span))
            return
        if isinstance(stmt, ast.LabeledStmt):
            self.place(stmt.label)
            self.emit(ir.SNop(stmt.span))
            self.lower_stmt(stmt.stmt)
            return
        if isinstance(stmt, ast.BreakStmt):
            if not self.loops:
                raise LoweringError("break outside loop/switch", stmt.span)
            self.emit(ir.SGoto(self.loops[-1][1], stmt.span))
            return
        if isinstance(stmt, ast.ContinueStmt):
            for cont, _brk in reversed(self.loops):
                if cont is not None:
                    self.emit(ir.SGoto(cont, stmt.span))
                    return
            raise LoweringError("continue outside loop", stmt.span)
        if isinstance(stmt, ast.EmptyStmt):
            return
        raise LoweringError(f"unsupported statement", getattr(stmt, "span", DUMMY_SPAN))

    def _lower_expr_stmt(self, stmt: ast.ExprStmt) -> None:
        exp = stmt.expr
        if isinstance(exp, ast.Name) and exp.ident in CAMLRETURN0_MACROS:
            self.emit(ir.SCamlReturn(None, stmt.span))
            return
        if isinstance(exp, ast.Call) and isinstance(exp.func, ast.Name):
            name = exp.func.ident
            if name in CAMLRETURN0_MACROS:
                self.emit(ir.SCamlReturn(None, stmt.span))
                return
            if name in CAMLRETURN_MACROS:
                args = exp.args
                value = self.lower_expr(args[-1]) if args else None
                self.emit(ir.SCamlReturn(value, stmt.span))
                return
            if name in CAMLPARAM_MACROS:
                for arg in exp.args:
                    if isinstance(arg, ast.Name):
                        self.decls.append(ir.ProtectDecl(arg.ident, stmt.span))
                return
            if name in CAMLLOCAL_MACROS:
                # Figure 5 formalizes CAMLlocal as a declaration plus
                # CAMLprotect; the Val_unit pre-initialization is a GC
                # artifact and must not constrain the variable's type.
                for arg in exp.args:
                    if isinstance(arg, ast.Name):
                        self.decls.append(
                            ir.VarDecl(
                                name=arg.ident,
                                ctype=CSrcValue(),
                                init=None,
                                span=stmt.span,
                            )
                        )
                        self.var_types[arg.ident] = CSrcValue()
                        self.decls.append(ir.ProtectDecl(arg.ident, stmt.span))
                return
            if name in STORE_FIELD_MACROS and len(exp.args) == 3:
                base = self.lower_expr(exp.args[0])
                index = self.lower_expr(exp.args[1])
                value = self.lower_expr(exp.args[2])
                if isinstance(index, ir.IntLit):
                    lval = ir.MemLval(base, index.value, stmt.span)
                else:
                    lval = ir.MemLval(
                        ir.PtrAdd(base, index, stmt.span), 0, stmt.span
                    )
                self.emit(ir.SAssign(lval, value, stmt.span))
                return
            if name in ("caml_modify", "caml_initialize") and len(exp.args) == 2:
                first = exp.args[0]
                if (
                    isinstance(first, ast.Unary)
                    and first.op == "&"
                    and isinstance(first.operand, ast.Call)
                    and isinstance(first.operand.func, ast.Name)
                    and first.operand.func.ident in FIELD_MACROS
                ):
                    # caml_modify(&Field(b, i), v) is a heap store
                    self._lower_expr_stmt(
                        ast.ExprStmt(
                            expr=ast.Call(
                                func=ast.Name("Store_field", stmt.span),
                                args=(
                                    first.operand.args[0],
                                    first.operand.args[1],
                                    exp.args[1],
                                ),
                                span=stmt.span,
                            ),
                            span=stmt.span,
                        )
                    )
                    return
            if self._is_plain_call(exp):
                call = self._build_call(name, exp)
                self.emit(ir.SAssign(None, call, stmt.span))
                return
        if isinstance(exp, ast.Assign):
            self.lower_assign(exp)
            return
        if isinstance(exp, ast.IncDec):
            self._lower_incdec(exp)
            return
        # any other expression statement: evaluate for effects, discard
        self.lower_expr(exp)

    def _lower_if(self, stmt: ast.IfStmt) -> None:
        label_then = self.new_label("then")
        label_else = self.new_label("else")
        label_end = self.new_label("endif")
        self.lower_cond(stmt.cond, label_then, label_else)
        self.place(label_then)
        self.emit(ir.SNop(stmt.span))
        self.lower_stmt(stmt.then)
        self.emit(ir.SGoto(label_end, stmt.span))
        self.place(label_else)
        self.emit(ir.SNop(stmt.span))
        if stmt.other is not None:
            self.lower_stmt(stmt.other)
        self.place(label_end)
        self.emit(ir.SNop(stmt.span))

    def _lower_while(self, stmt: ast.WhileStmt) -> None:
        label_head = self.new_label("while")
        label_body = self.new_label("body")
        label_end = self.new_label("endwhile")
        self.place(label_head)
        self.emit(ir.SNop(stmt.span))
        self.lower_cond(stmt.cond, label_body, label_end)
        self.place(label_body)
        self.emit(ir.SNop(stmt.span))
        self.loops.append((label_head, label_end))
        self.lower_stmt(stmt.body)
        self.loops.pop()
        self.emit(ir.SGoto(label_head, stmt.span))
        self.place(label_end)
        self.emit(ir.SNop(stmt.span))

    def _lower_do_while(self, stmt: ast.DoWhileStmt) -> None:
        label_body = self.new_label("do")
        label_cond = self.new_label("docond")
        label_end = self.new_label("enddo")
        self.place(label_body)
        self.emit(ir.SNop(stmt.span))
        self.loops.append((label_cond, label_end))
        self.lower_stmt(stmt.body)
        self.loops.pop()
        self.place(label_cond)
        self.emit(ir.SNop(stmt.span))
        self.lower_cond(stmt.cond, label_body, label_end)
        self.place(label_end)
        self.emit(ir.SNop(stmt.span))

    def _lower_for(self, stmt: ast.ForStmt) -> None:
        if stmt.init is not None:
            self.lower_stmt(stmt.init)
        label_head = self.new_label("for")
        label_body = self.new_label("forbody")
        label_step = self.new_label("forstep")
        label_end = self.new_label("endfor")
        self.place(label_head)
        self.emit(ir.SNop(stmt.span))
        if stmt.cond is not None:
            self.lower_cond(stmt.cond, label_body, label_end)
        self.place(label_body)
        self.emit(ir.SNop(stmt.span))
        self.loops.append((label_step, label_end))
        self.lower_stmt(stmt.body)
        self.loops.pop()
        self.place(label_step)
        self.emit(ir.SNop(stmt.span))
        if stmt.step is not None:
            self._lower_expr_stmt(ast.ExprStmt(expr=stmt.step, span=stmt.span))
        self.emit(ir.SGoto(label_head, stmt.span))
        self.place(label_end)
        self.emit(ir.SNop(stmt.span))

    def _lower_switch(self, stmt: ast.SwitchStmt) -> None:
        label_end = self.new_label("endswitch")
        case_labels = [self.new_label(f"case") for _ in stmt.cases]
        default_index: Optional[int] = None
        for index, case in enumerate(stmt.cases):
            if case.value is None:
                default_index = index

        scrutinee = stmt.scrutinee
        sum_call = (
            self._as_macro_call(scrutinee, TAG_VAL_MACROS)
            if isinstance(scrutinee, ast.Call)
            else None
        )
        int_call = (
            self._as_macro_call(scrutinee, INT_OF_VAL_MACROS)
            if isinstance(scrutinee, ast.Call)
            else None
        )
        if sum_call is not None or int_call is not None:
            call = sum_call or int_call
            assert call is not None
            var = self._value_var_for(call.args[0], stmt.span)
            for index, case in enumerate(stmt.cases):
                if case.value is None:
                    continue
                if sum_call is not None:
                    self.emit(
                        ir.SIfSumTag(var, case.value, case_labels[index], stmt.span)
                    )
                else:
                    self.emit(
                        ir.SIfIntTag(var, case.value, case_labels[index], stmt.span)
                    )
        else:
            lowered = self.lower_expr(scrutinee)
            if not isinstance(lowered, (ir.VarExp, ir.IntLit)):
                temp = self.new_temp(CSrcScalar("int"), stmt.span)
                self.emit(ir.SAssign(ir.VarExp(temp, stmt.span), lowered, stmt.span))
                lowered = ir.VarExp(temp, stmt.span)
            for index, case in enumerate(stmt.cases):
                if case.value is None:
                    continue
                self.emit(
                    ir.SIf(
                        ir.AOp(
                            "==",
                            lowered,
                            ir.IntLit(case.value, stmt.span),
                            stmt.span,
                        ),
                        case_labels[index],
                        stmt.span,
                    )
                )
        if default_index is not None:
            self.emit(ir.SGoto(case_labels[default_index], stmt.span))
        else:
            self.emit(ir.SGoto(label_end, stmt.span))
        self.loops.append((None, label_end))
        for index, case in enumerate(stmt.cases):
            self.place(case_labels[index])
            self.emit(ir.SNop(case.span))
            for item in case.body:
                self.lower_stmt(item)
        self.loops.pop()
        self.place(label_end)
        self.emit(ir.SNop(stmt.span))

    # -- entry point ---------------------------------------------------------------------

    def lower(self) -> ir.FunctionIR:
        assert self.func.body is not None
        for item in self.func.body.items:
            self.lower_stmt(item)
        if not self.stmts or not isinstance(
            self.stmts[-1], (ir.SReturn, ir.SCamlReturn, ir.SGoto)
        ):
            # make the implicit fall-off-the-end exit explicit
            self.emit(ir.SReturn(None, self.func.span))
        if self.pending_labels:
            self.emit(ir.SNop(self.func.span))
        return ir.FunctionIR(
            name=self.func.name,
            params=list(self.func.params),
            return_type=self.func.return_type,
            decls=self.decls,
            body=self.stmts,
            labels=self.labels,
            span=self.func.span,
            is_definition=True,
            polymorphic=self.func.polymorphic,
        )


def lower_unit(
    unit: ast.TranslationUnit,
    extra_returns: Optional[dict[str, CSrcType]] = None,
) -> ir.ProgramIR:
    """Lower a parsed translation unit to the Figure 5 IR."""
    symbols = SymbolTable.for_unit(unit, extra_returns)
    program = ir.ProgramIR()
    for func in unit.functions:
        if func.body is None:
            program.functions.append(
                ir.FunctionIR(
                    name=func.name,
                    params=list(func.params),
                    return_type=func.return_type,
                    span=func.span,
                    is_definition=False,
                    polymorphic=func.polymorphic,
                )
            )
            continue
        program.functions.append(FunctionLowerer(func, symbols).lower())
    for decl in unit.globals:
        program.globals.append(
            ir.VarDecl(name=decl.name, ctype=decl.ctype, init=None, span=decl.span)
        )
    return program
