"""Recursive-descent parser for the C subset.

Covers what OCaml FFI glue code actually uses: function definitions and
prototypes, scalar/pointer/struct types plus the ``value`` typedef,
structured control flow (``if``/``while``/``do``/``for``/``switch``),
``goto``/labels, the full C expression precedence ladder, casts, and the
FFI macros (which parse as ordinary calls/identifiers and are given meaning
by :mod:`repro.cfront.lower`).

A function can be marked polymorphic for the analysis by preceding it with
the ``MLFFI_POLYMORPHIC`` marker (the paper hand-annotated 4 such functions
in its suite).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.srctypes import (
    CSrcFun,
    CSrcPtr,
    CSrcScalar,
    CSrcStruct,
    CSrcType,
    CSrcValue,
    CSrcVoid,
)
from ..source import SourceFile, Span
from ..telemetry import span as _tspan
from . import ast
from .lexer import TokKind, Token, tokenize


class ParseError(Exception):
    def __init__(self, message: str, span: Span):
        self.span = span
        super().__init__(f"{span}: {message}")


@dataclass(frozen=True)
class ParseHints:
    """Dialect-specific knowledge injected into the parser.

    The grammar is shared between boundary dialects; what differs is the
    type vocabulary.  ``typedefs`` pre-registers names (``PyMethodDef`` →
    an opaque struct).  ``value_pointer_structs`` names struct types whose
    *pointers* are the dialect's boxed-value type, so ``PyObject *`` parses
    as the same ``CSrcValue`` that OCaml's ``value`` does and the Figure 6/7
    inference applies unchanged.  ``null_is_identifier`` keeps ``NULL`` as a
    name (instead of folding it to the integer 0) so a dialect rewrite can
    give it value meaning.  ``qualifiers`` adds dialect storage/linkage
    markers (``JNIEXPORT``, ``JNICALL``) that may appear before the type or
    between the type and the declarator, and are skipped like ``CAMLprim``.
    """

    typedefs: dict[str, CSrcType] = field(default_factory=dict)
    value_pointer_structs: frozenset[str] = frozenset()
    null_is_identifier: bool = False
    qualifiers: frozenset[str] = frozenset()


_TYPE_KEYWORDS = {
    "void", "char", "short", "int", "long", "float", "double",
    "unsigned", "signed", "value", "intnat", "uintnat", "size_t", "mlsize_t",
}
_QUALIFIERS = {
    "static", "const", "extern", "inline", "register", "volatile",
    "CAMLprim", "CAMLexport", "CAMLextern", "CAMLweakdef",
}
_STMT_KEYWORDS = {
    "if", "else", "while", "do", "for", "switch", "case", "default",
    "return", "goto", "break", "continue", "typedef", "struct", "union",
    "enum", "sizeof",
}
_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}


class Parser:
    def __init__(self, source: SourceFile, hints: Optional[ParseHints] = None):
        self.source = source
        self.hints = hints or ParseHints()
        self.tokens = tokenize(source)
        self.pos = 0
        self.typedefs: dict[str, CSrcType] = {"value": CSrcValue()}
        self.typedefs.update(self.hints.typedefs)
        self.qualifiers = _QUALIFIERS | self.hints.qualifiers
        self.struct_names: set[str] = set()

    # -- token plumbing ------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokKind.EOF:
            self.pos += 1
        return token

    def expect_punct(self, text: str) -> Token:
        token = self.advance()
        if not token.is_punct(text):
            raise ParseError(f"expected `{text}`, found `{token}`", token.span)
        return token

    def expect_ident(self) -> Token:
        token = self.advance()
        if token.kind is not TokKind.IDENT:
            raise ParseError(f"expected identifier, found `{token}`", token.span)
        return token

    def at_eof(self) -> bool:
        return self.tokens[self.pos].kind is TokKind.EOF

    # -- types ------------------------------------------------------------------

    def at_type_start(self, offset: int = 0) -> bool:
        token = self.peek(offset)
        if token.kind is not TokKind.IDENT:
            return False
        if token.text in _TYPE_KEYWORDS or token.text in self.qualifiers:
            return True
        if token.text in ("struct", "union", "enum"):
            return True
        return token.text in self.typedefs

    def parse_type(self) -> CSrcType:
        """Parse a type specifier followed by any number of ``*``."""
        base = self._parse_base_type()
        tokens = self.tokens
        while tokens[self.pos].is_punct("*"):
            self.advance()
            if (
                isinstance(base, CSrcStruct)
                and base.name in self.hints.value_pointer_structs
            ):
                # the dialect's boxed-value pointer (e.g. `PyObject *`)
                base = CSrcValue()
            else:
                base = CSrcPtr(base)
            while True:
                token = tokens[self.pos]
                if token.kind is not TokKind.IDENT or token.text not in (
                    "const",
                    "volatile",
                ):
                    break
                self.advance()
        # calling-convention markers between the type and the declarator
        # (JNI's `JNIEXPORT jint JNICALL f(...)`)
        if self.hints.qualifiers:
            hint_qualifiers = self.hints.qualifiers
            while True:
                token = tokens[self.pos]
                if (
                    token.kind is not TokKind.IDENT
                    or token.text not in hint_qualifiers
                ):
                    break
                self.advance()
        return base

    def _parse_base_type(self) -> CSrcType:
        tokens = self.tokens
        while True:
            token = tokens[self.pos]
            if token.kind is not TokKind.IDENT or token.text not in self.qualifiers:
                break
            self.advance()
        token = self.tokens[self.pos]
        if token.is_ident("struct", "union"):
            self.advance()
            name = self.expect_ident().text
            self.struct_names.add(name)
            if self.tokens[self.pos].is_punct("{"):
                self._skip_braces()
            return CSrcStruct(name)
        if token.is_ident("enum"):
            self.advance()
            if self.tokens[self.pos].kind is TokKind.IDENT:
                self.advance()
            if self.tokens[self.pos].is_punct("{"):
                self._skip_braces()
            return CSrcScalar("int")
        if token.is_ident("void"):
            self.advance()
            return CSrcVoid()
        if token.text in self.typedefs:
            self.advance()
            return self.typedefs[token.text]
        if token.text in _TYPE_KEYWORDS:
            spelling: list[str] = []
            while True:
                current = tokens[self.pos]
                if (
                    current.kind is not TokKind.IDENT
                    or current.text not in _TYPE_KEYWORDS
                ):
                    break
                spelling.append(self.advance().text)
            while True:
                current = tokens[self.pos]
                if (
                    current.kind is not TokKind.IDENT
                    or current.text not in self.qualifiers
                ):
                    break
                self.advance()
            return CSrcScalar(" ".join(spelling))
        raise ParseError(f"expected type, found `{token}`", token.span)

    def _skip_braces(self) -> None:
        self.expect_punct("{")
        depth = 1
        while depth and not self.at_eof():
            token = self.advance()
            if token.is_punct("{"):
                depth += 1
            elif token.is_punct("}"):
                depth -= 1

    # -- top level ---------------------------------------------------------------

    def parse_translation_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit(filename=self.source.filename)
        while not self.at_eof():
            self._parse_top_item(unit)
        return unit

    def _parse_top_item(self, unit: ast.TranslationUnit) -> None:
        token = self.tokens[self.pos]
        if token.is_punct(";"):
            self.advance()
            return
        if token.is_ident("typedef"):
            self._parse_typedef()
            return
        if token.is_ident("struct", "union") and self.peek(2).is_punct("{", ";"):
            # standalone struct definition/declaration
            self._parse_base_type()
            if self.tokens[self.pos].is_punct(";"):
                self.advance()
            return
        polymorphic = False
        if token.is_ident("MLFFI_POLYMORPHIC"):
            self.advance()
            polymorphic = True
        start_span = self.tokens[self.pos].span
        ctype = self.parse_type()
        name = self.expect_ident().text
        if self.tokens[self.pos].is_punct("("):
            func = self._parse_function(name, ctype, start_span)
            func.polymorphic = polymorphic
            unit.functions.append(func)
            return
        # global variable(s)
        while True:
            ctype = self._parse_array_suffix(ctype)
            init = None
            if self.tokens[self.pos].is_punct("="):
                self.advance()
                init = self._parse_initializer()
            unit.globals.append(
                ast.GlobalDecl(name=name, ctype=ctype, init=init, span=start_span)
            )
            if self.tokens[self.pos].is_punct(","):
                self.advance()
                name = self.expect_ident().text
                continue
            break
        self.expect_punct(";")

    def _parse_typedef(self) -> None:
        self.advance()  # typedef
        base = self.parse_type()
        if self.tokens[self.pos].is_punct("("):
            # function pointer: typedef ret (*name)(params);
            name, fn_type = self._parse_fnptr_declarator(base)
            self.typedefs[name] = fn_type
        else:
            name = self.expect_ident().text
            self.typedefs[name] = self._parse_array_suffix(base)
        self.expect_punct(";")

    def _parse_fnptr_declarator(self, result: CSrcType) -> tuple[str, CSrcType]:
        """``(*name)(param-types)`` — returns the name and the CSrcFun."""
        self.expect_punct("(")
        self.expect_punct("*")
        name = self.expect_ident().text
        self.expect_punct(")")
        self.expect_punct("(")
        params: list[CSrcType] = []
        if not self.tokens[self.pos].is_punct(")"):
            if self.tokens[self.pos].is_ident("void") and self.peek(1).is_punct(")"):
                self.advance()
            else:
                while True:
                    params.append(self.parse_type())
                    if self.tokens[self.pos].kind is TokKind.IDENT and not self.tokens[self.pos].is_ident(
                        *_STMT_KEYWORDS
                    ):
                        self.advance()  # optional parameter name
                    if self.tokens[self.pos].is_punct(","):
                        self.advance()
                        continue
                    break
        self.expect_punct(")")
        return name, CSrcFun(params=tuple(params), result=result)

    def _parse_array_suffix(self, ctype: CSrcType) -> CSrcType:
        while self.tokens[self.pos].is_punct("["):
            self.advance()
            if not self.tokens[self.pos].is_punct("]"):
                self.advance()
            self.expect_punct("]")
            ctype = CSrcPtr(ctype)
        return ctype

    def _parse_initializer(self) -> ast.CExpr:
        """An initializer: an assignment expression or a brace list."""
        if self.tokens[self.pos].is_punct("{"):
            return self._parse_init_list()
        return self.parse_assignment_expr()

    def _parse_init_list(self) -> ast.InitList:
        start = self.expect_punct("{")
        items: list[ast.InitItem] = []
        while not self.tokens[self.pos].is_punct("}"):
            field_name: Optional[str] = None
            if self.tokens[self.pos].is_punct(".") and self.peek(1).kind is TokKind.IDENT:
                self.advance()
                field_name = self.expect_ident().text
                self.expect_punct("=")
            value = self._parse_initializer()
            items.append(ast.InitItem(value=value, field_name=field_name))
            if self.tokens[self.pos].is_punct(","):
                self.advance()  # also permits a trailing comma
                continue
            break
        self.expect_punct("}")
        return ast.InitList(items=tuple(items), span=start.span)

    def _parse_function(
        self, name: str, return_type: CSrcType, start_span: Span
    ) -> ast.FunctionDef:
        self.expect_punct("(")
        params: list[tuple[str, CSrcType]] = []
        if not self.tokens[self.pos].is_punct(")"):
            if self.tokens[self.pos].is_ident("void") and self.peek(1).is_punct(")"):
                self.advance()
            else:
                while True:
                    param_type = self.parse_type()
                    param_name = ""
                    if self.tokens[self.pos].kind is TokKind.IDENT and not self.tokens[self.pos].is_ident(
                        *_STMT_KEYWORDS
                    ):
                        param_name = self.advance().text
                    param_type = self._parse_array_suffix(param_type)
                    params.append((param_name, param_type))
                    if self.tokens[self.pos].is_punct(","):
                        self.advance()
                        continue
                    break
        self.expect_punct(")")
        body: Optional[ast.Block] = None
        if self.tokens[self.pos].is_punct("{"):
            body = self.parse_block()
        else:
            self.expect_punct(";")
        # name anonymous prototype parameters so arity stays visible
        params = [
            (pname or f"__arg{index}", ptype)
            for index, (pname, ptype) in enumerate(params)
        ]
        return ast.FunctionDef(
            name=name,
            return_type=return_type,
            params=params,
            body=body,
            span=start_span,
        )

    # -- statements ------------------------------------------------------------------

    def parse_block(self) -> ast.Block:
        start = self.expect_punct("{")
        items: list[ast.CStmtOrDecl] = []
        while not self.tokens[self.pos].is_punct("}"):
            if self.at_eof():
                raise ParseError("unterminated block", start.span)
            items.append(self.parse_block_item())
        self.expect_punct("}")
        return ast.Block(items=items, span=start.span)

    def parse_block_item(self) -> ast.CStmtOrDecl:
        if self.at_type_start() and not self._is_label_ahead():
            decls = self._parse_declaration()
            if len(decls) == 1:
                return decls[0]
            return ast.Block(items=list(decls), span=decls[0].span)
        return self.parse_statement()

    def _is_label_ahead(self) -> bool:
        return self.tokens[self.pos].kind is TokKind.IDENT and self.peek(1).is_punct(":")

    def _parse_declaration(self) -> list[ast.Declaration]:
        """One declaration statement, possibly ``long a, b = 0, *c;``."""
        start = self.tokens[self.pos].span
        base = self._parse_base_type()
        if self.tokens[self.pos].is_punct("("):
            name, ctype = self._parse_fnptr_declarator(base)
            self.expect_punct(";")
            return [ast.Declaration(name=name, ctype=ctype, init=None, span=start)]
        decls: list[ast.Declaration] = []
        while True:
            ctype = base
            while self.tokens[self.pos].is_punct("*"):
                self.advance()
                if (
                    isinstance(ctype, CSrcStruct)
                    and ctype.name in self.hints.value_pointer_structs
                ):
                    ctype = CSrcValue()
                else:
                    ctype = CSrcPtr(ctype)
                while self.tokens[self.pos].is_ident("const", "volatile"):
                    self.advance()
            if self.tokens[self.pos].is_punct("("):
                # pointer-returning function pointer: char *(*cb)(int);
                name, ctype = self._parse_fnptr_declarator(ctype)
                decls.append(
                    ast.Declaration(name=name, ctype=ctype, init=None, span=start)
                )
                self.expect_punct(";")
                return decls
            name = self.expect_ident().text
            ctype = self._parse_array_suffix(ctype)
            init = None
            if self.tokens[self.pos].is_punct("="):
                self.advance()
                init = self._parse_initializer()
            decls.append(
                ast.Declaration(name=name, ctype=ctype, init=init, span=start)
            )
            if self.tokens[self.pos].is_punct(","):
                self.advance()
                continue
            break
        self.expect_punct(";")
        return decls

    def parse_statement(self) -> ast.CStmt:
        token = self.tokens[self.pos]
        if token.is_punct("{"):
            return self.parse_block()
        if token.is_punct(";"):
            self.advance()
            return ast.EmptyStmt(span=token.span)
        if token.is_ident("if"):
            return self._parse_if()
        if token.is_ident("while"):
            return self._parse_while()
        if token.is_ident("do"):
            return self._parse_do_while()
        if token.is_ident("for"):
            return self._parse_for()
        if token.is_ident("switch"):
            return self._parse_switch()
        if token.is_ident("return"):
            self.advance()
            value = None
            if not self.tokens[self.pos].is_punct(";"):
                value = self.parse_expr()
            self.expect_punct(";")
            return ast.ReturnStmt(value=value, span=token.span)
        if token.is_ident("goto"):
            self.advance()
            label = self.expect_ident().text
            self.expect_punct(";")
            return ast.GotoStmt(label=label, span=token.span)
        if token.is_ident("break"):
            self.advance()
            self.expect_punct(";")
            return ast.BreakStmt(span=token.span)
        if token.is_ident("continue"):
            self.advance()
            self.expect_punct(";")
            return ast.ContinueStmt(span=token.span)
        if self._is_label_ahead():
            label = self.advance().text
            self.expect_punct(":")
            if self.tokens[self.pos].is_punct("}"):
                inner: ast.CStmt = ast.EmptyStmt(span=token.span)
            else:
                inner = self.parse_statement()
            return ast.LabeledStmt(label=label, stmt=inner, span=token.span)
        expr = self.parse_expr()
        self.expect_punct(";")
        return ast.ExprStmt(expr=expr, span=token.span)

    def _parse_if(self) -> ast.CStmt:
        token = self.advance()
        self.expect_punct("(")
        cond = self.parse_expr()
        self.expect_punct(")")
        then = self.parse_statement()
        other = None
        if self.tokens[self.pos].is_ident("else"):
            self.advance()
            other = self.parse_statement()
        return ast.IfStmt(cond=cond, then=then, other=other, span=token.span)

    def _parse_while(self) -> ast.CStmt:
        token = self.advance()
        self.expect_punct("(")
        cond = self.parse_expr()
        self.expect_punct(")")
        body = self.parse_statement()
        return ast.WhileStmt(cond=cond, body=body, span=token.span)

    def _parse_do_while(self) -> ast.CStmt:
        token = self.advance()
        body = self.parse_statement()
        if not self.advance().is_ident("while"):
            raise ParseError("expected `while` after do-body", token.span)
        self.expect_punct("(")
        cond = self.parse_expr()
        self.expect_punct(")")
        self.expect_punct(";")
        return ast.DoWhileStmt(body=body, cond=cond, span=token.span)

    def _parse_for(self) -> ast.CStmt:
        token = self.advance()
        self.expect_punct("(")
        init: Optional[ast.CStmtOrDecl] = None
        if not self.tokens[self.pos].is_punct(";"):
            if self.at_type_start():
                decls = self._parse_declaration()
                init = (
                    decls[0]
                    if len(decls) == 1
                    else ast.Block(items=list(decls), span=decls[0].span)
                )
            else:
                init = ast.ExprStmt(expr=self.parse_expr(), span=self.tokens[self.pos].span)
                self.expect_punct(";")
        else:
            self.advance()
        cond = None
        if not self.tokens[self.pos].is_punct(";"):
            cond = self.parse_expr()
        self.expect_punct(";")
        step = None
        if not self.tokens[self.pos].is_punct(")"):
            step = self.parse_expr()
        self.expect_punct(")")
        body = self.parse_statement()
        return ast.ForStmt(init=init, cond=cond, step=step, body=body, span=token.span)

    def _parse_switch(self) -> ast.CStmt:
        token = self.advance()
        self.expect_punct("(")
        scrutinee = self.parse_expr()
        self.expect_punct(")")
        self.expect_punct("{")
        cases: list[ast.SwitchCase] = []
        current: Optional[ast.SwitchCase] = None
        while not self.tokens[self.pos].is_punct("}"):
            if self.tokens[self.pos].is_ident("case"):
                span = self.advance().span
                value = self._parse_case_value()
                self.expect_punct(":")
                current = ast.SwitchCase(value=value, body=[], span=span)
                cases.append(current)
            elif self.tokens[self.pos].is_ident("default"):
                span = self.advance().span
                self.expect_punct(":")
                current = ast.SwitchCase(value=None, body=[], span=span)
                cases.append(current)
            else:
                if current is None:
                    raise ParseError(
                        "statement before first case label", self.tokens[self.pos].span
                    )
                current.body.append(self.parse_block_item())
        self.expect_punct("}")
        return ast.SwitchStmt(scrutinee=scrutinee, cases=cases, span=token.span)

    def _parse_case_value(self) -> int:
        negative = False
        if self.tokens[self.pos].is_punct("-"):
            self.advance()
            negative = True
        token = self.advance()
        if token.kind is not TokKind.NUMBER:
            raise ParseError("case label must be an integer constant", token.span)
        value = int(token.text)
        return -value if negative else value

    # -- expressions ------------------------------------------------------------------

    def parse_expr(self) -> ast.CExpr:
        return self.parse_assignment_expr()

    def parse_assignment_expr(self) -> ast.CExpr:
        left = self._parse_conditional()
        token = self.tokens[self.pos]
        if token.kind is TokKind.PUNCT and token.text in _ASSIGN_OPS:
            self.advance()
            right = self.parse_assignment_expr()
            op = token.text[:-1]  # '' for '=', '+' for '+=', ...
            return ast.Assign(op=op, target=left, value=right, span=token.span)
        return left

    def _parse_conditional(self) -> ast.CExpr:
        cond = self._parse_binary()
        if self.tokens[self.pos].is_punct("?"):
            span = self.advance().span
            then = self.parse_expr()
            self.expect_punct(":")
            other = self._parse_conditional()
            return ast.Conditional(cond=cond, then=then, other=other, span=span)
        return cond

    #: operator -> binding power; higher binds tighter.  Same table as the
    #: old per-level cascade, flattened for precedence climbing: one loop
    #: replaces ten nested calls per operand on the cold path.
    _BINARY_PREC: dict[str, int] = {
        "||": 1,
        "&&": 2,
        "|": 3,
        "^": 4,
        "&": 5,
        "==": 6, "!=": 6,
        "<": 7, ">": 7, "<=": 7, ">=": 7,
        "<<": 8, ">>": 8,
        "+": 9, "-": 9,
        "*": 10, "/": 10, "%": 10,
    }

    def _parse_binary(self, min_prec: int = 1) -> ast.CExpr:
        left = self._parse_cast()
        prec_table = self._BINARY_PREC
        while True:
            token = self.tokens[self.pos]
            if token.kind is not TokKind.PUNCT:
                return left
            prec = prec_table.get(token.text)
            if prec is None or prec < min_prec:
                return left
            self.advance()
            # all binary operators are left-associative: the right operand
            # climbs one level tighter
            right = self._parse_binary(prec + 1)
            left = ast.Binary(
                op=token.text, left=left, right=right, span=token.span
            )

    _UNARY_OPS = frozenset({"!", "~", "-", "+", "*", "&"})
    _INCDEC_OPS = frozenset({"++", "--"})
    _POSTFIX_STARTS = frozenset({"(", "[", ".", "->", "++", "--"})

    def _parse_cast(self) -> ast.CExpr:
        # kind/text are tested directly on these expression-core paths:
        # the is_punct(*texts) convenience builds an argument tuple per
        # call, which adds up at ~one call per token
        token = self.tokens[self.pos]
        if (
            token.kind is TokKind.PUNCT
            and token.text == "("
            and self.at_type_start(1)
        ):
            span = self.advance().span
            ctype = self.parse_type()
            self.expect_punct(")")
            operand = self._parse_cast()
            return ast.Cast(ctype=ctype, operand=operand, span=span)
        return self._parse_unary()

    def _parse_unary(self) -> ast.CExpr:
        token = self.tokens[self.pos]
        if token.kind is TokKind.PUNCT:
            text = token.text
            if text in self._UNARY_OPS:
                self.advance()
                operand = self._parse_cast()
                if text == "+":
                    return operand
                if text == "-" and isinstance(operand, ast.Num):
                    return ast.Num(value=-operand.value, span=token.span)
                return ast.Unary(op=text, operand=operand, span=token.span)
            if text in self._INCDEC_OPS:
                self.advance()
                operand = self._parse_unary()
                return ast.IncDec(op=text, target=operand, span=token.span)
        elif token.kind is TokKind.IDENT and token.text == "sizeof":
            self.advance()
            if self.tokens[self.pos].is_punct("(") and self.at_type_start(1):
                self.advance()
                self.parse_type()
                self.expect_punct(")")
            else:
                self._parse_unary()
            return ast.SizeOf(span=token.span)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.CExpr:
        expr = self._parse_primary()
        tokens = self.tokens
        while True:
            token = tokens[self.pos]
            if (
                token.kind is not TokKind.PUNCT
                or token.text not in self._POSTFIX_STARTS
            ):
                return expr
            text = token.text
            if text == "(":
                self.advance()
                args: list[ast.CExpr] = []
                if not tokens[self.pos].is_punct(")"):
                    while True:
                        args.append(self.parse_assignment_expr())
                        if tokens[self.pos].is_punct(","):
                            self.advance()
                            continue
                        break
                self.expect_punct(")")
                expr = ast.Call(func=expr, args=tuple(args), span=token.span)
            elif text == "[":
                self.advance()
                index = self.parse_expr()
                self.expect_punct("]")
                expr = ast.Index(base=expr, index=index, span=token.span)
            elif text == ".":
                self.advance()
                name = self.expect_ident().text
                expr = ast.Member(base=expr, field_name=name, arrow=False, span=token.span)
            elif text == "->":
                self.advance()
                name = self.expect_ident().text
                expr = ast.Member(base=expr, field_name=name, arrow=True, span=token.span)
            else:  # ++ / --
                self.advance()
                expr = ast.IncDec(op=text, target=expr, span=token.span)

    def _parse_primary(self) -> ast.CExpr:
        token = self.advance()
        if token.kind is TokKind.NUMBER:
            return ast.Num(value=int(token.text), span=token.span)
        if token.kind is TokKind.STRING:
            text = token.text
            # adjacent string literal concatenation
            while self.tokens[self.pos].kind is TokKind.STRING:
                text += self.advance().text
            return ast.Str(value=text, span=token.span)
        if token.kind is TokKind.IDENT:
            if token.text == "NULL" and not self.hints.null_is_identifier:
                return ast.Num(value=0, span=token.span)
            return ast.Name(ident=token.text, span=token.span)
        if token.is_punct("("):
            expr = self.parse_expr()
            self.expect_punct(")")
            return expr
        raise ParseError(f"unexpected token `{token}`", token.span)


def parse_c(
    source: SourceFile, hints: Optional[ParseHints] = None
) -> ast.TranslationUnit:
    """Parse one C translation unit."""
    # the Parser constructor runs the whole master-regex scan, so the
    # two spans really are the lex and parse phases
    with _tspan("lex", cat="phase", file=source.filename):
        parser = Parser(source, hints)
    with _tspan("parse", cat="phase", file=source.filename):
        return parser.parse_translation_unit()


def parse_c_text(
    text: str,
    filename: str = "<string>",
    hints: Optional[ParseHints] = None,
) -> ast.TranslationUnit:
    return parse_c(SourceFile(filename, text), hints)
