"""Surface AST for the C subset understood by the front end.

This is what :mod:`repro.cfront.parser` produces and what
:mod:`repro.cfront.lower` compiles into the Figure 5 IR.  It mirrors the C
glue-code idiom: functions, scalar/pointer/struct types, structured control
flow, and the OCaml FFI macros as ordinary-looking calls (recognized later
by the lowering).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from ..core.srctypes import CSrcType
from ..source import DUMMY_SPAN, Span


# -- expressions -------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Num:
    value: int
    span: Span = DUMMY_SPAN


@dataclass(frozen=True, slots=True)
class Str:
    value: str
    span: Span = DUMMY_SPAN


@dataclass(frozen=True, slots=True)
class Name:
    ident: str
    span: Span = DUMMY_SPAN


@dataclass(frozen=True, slots=True)
class Unary:
    op: str  # ! ~ - * &
    operand: "CExpr"
    span: Span = DUMMY_SPAN


@dataclass(frozen=True, slots=True)
class Binary:
    op: str
    left: "CExpr"
    right: "CExpr"
    span: Span = DUMMY_SPAN


@dataclass(frozen=True, slots=True)
class Conditional:
    cond: "CExpr"
    then: "CExpr"
    other: "CExpr"
    span: Span = DUMMY_SPAN


@dataclass(frozen=True, slots=True)
class Cast:
    ctype: CSrcType
    operand: "CExpr"
    span: Span = DUMMY_SPAN


@dataclass(frozen=True, slots=True)
class Call:
    func: "CExpr"
    args: Tuple["CExpr", ...]
    span: Span = DUMMY_SPAN


@dataclass(frozen=True, slots=True)
class Index:
    base: "CExpr"
    index: "CExpr"
    span: Span = DUMMY_SPAN


@dataclass(frozen=True, slots=True)
class Member:
    base: "CExpr"
    field_name: str
    arrow: bool
    span: Span = DUMMY_SPAN


@dataclass(frozen=True, slots=True)
class SizeOf:
    """``sizeof(type)`` or ``sizeof expr`` — folded to the word size."""

    span: Span = DUMMY_SPAN


@dataclass(frozen=True, slots=True)
class Assign:
    """``lhs op= rhs`` as an expression (op is '' for plain assignment)."""

    op: str
    target: "CExpr"
    value: "CExpr"
    span: Span = DUMMY_SPAN


@dataclass(frozen=True, slots=True)
class IncDec:
    """``x++ / ++x / x-- / --x``."""

    op: str  # '++' or '--'
    target: "CExpr"
    span: Span = DUMMY_SPAN


@dataclass(frozen=True, slots=True)
class InitItem:
    """One element of a brace initializer, optionally designated."""

    value: "CExpr"
    field_name: Optional[str] = None


@dataclass(frozen=True, slots=True)
class InitList:
    """A brace initializer ``{ e, .f = e, { ... }, ... }``.

    The analysis does not evaluate these (aggregate initialization is
    outside the Figure 5 IR); they exist so declaration-level tables —
    ``PyMethodDef`` method tables, ``PyModuleDef`` records, static arrays —
    survive parsing and can be read by dialect front-ends.
    """

    items: Tuple["InitItem", ...] = ()
    span: Span = DUMMY_SPAN


CExpr = Union[
    Num, Str, Name, Unary, Binary, Conditional, Cast, Call, Index, Member,
    SizeOf, Assign, IncDec, InitList,
]


# -- statements ----------------------------------------------------------------


@dataclass(slots=True)
class Block:
    items: list["CStmtOrDecl"] = field(default_factory=list)
    span: Span = DUMMY_SPAN


@dataclass(slots=True)
class ExprStmt:
    expr: CExpr
    span: Span = DUMMY_SPAN


@dataclass(slots=True)
class IfStmt:
    cond: CExpr
    then: "CStmt"
    other: Optional["CStmt"]
    span: Span = DUMMY_SPAN


@dataclass(slots=True)
class WhileStmt:
    cond: CExpr
    body: "CStmt"
    span: Span = DUMMY_SPAN


@dataclass(slots=True)
class DoWhileStmt:
    body: "CStmt"
    cond: CExpr
    span: Span = DUMMY_SPAN


@dataclass(slots=True)
class ForStmt:
    init: Optional["CStmtOrDecl"]
    cond: Optional[CExpr]
    step: Optional[CExpr]
    body: "CStmt"
    span: Span = DUMMY_SPAN


@dataclass(slots=True)
class SwitchCase:
    value: Optional[int]  # None for default
    body: list["CStmtOrDecl"]
    span: Span = DUMMY_SPAN


@dataclass(slots=True)
class SwitchStmt:
    scrutinee: CExpr
    cases: list[SwitchCase]
    span: Span = DUMMY_SPAN


@dataclass(slots=True)
class ReturnStmt:
    value: Optional[CExpr]
    span: Span = DUMMY_SPAN


@dataclass(slots=True)
class GotoStmt:
    label: str
    span: Span = DUMMY_SPAN


@dataclass(slots=True)
class LabeledStmt:
    label: str
    stmt: "CStmt"
    span: Span = DUMMY_SPAN


@dataclass(slots=True)
class BreakStmt:
    span: Span = DUMMY_SPAN


@dataclass(slots=True)
class ContinueStmt:
    span: Span = DUMMY_SPAN


@dataclass(slots=True)
class EmptyStmt:
    span: Span = DUMMY_SPAN


CStmt = Union[
    Block, ExprStmt, IfStmt, WhileStmt, DoWhileStmt, ForStmt, SwitchStmt,
    ReturnStmt, GotoStmt, LabeledStmt, BreakStmt, ContinueStmt, EmptyStmt,
]


@dataclass(slots=True)
class Declaration:
    """``ctype name = init;`` — one declarator per Declaration node."""

    name: str
    ctype: CSrcType
    init: Optional[CExpr]
    span: Span = DUMMY_SPAN


CStmtOrDecl = Union[CStmt, Declaration]


# -- top level --------------------------------------------------------------------


@dataclass(slots=True)
class FunctionDef:
    name: str
    return_type: CSrcType
    params: list[tuple[str, CSrcType]]
    body: Optional[Block]  # None for prototypes
    span: Span = DUMMY_SPAN
    #: ``/*@ polymorphic @*/`` annotation (paper §5.1 hand annotations)
    polymorphic: bool = False


@dataclass(slots=True)
class GlobalDecl:
    name: str
    ctype: CSrcType
    init: Optional[CExpr]
    span: Span = DUMMY_SPAN


@dataclass(slots=True)
class TranslationUnit:
    functions: list[FunctionDef] = field(default_factory=list)
    globals: list[GlobalDecl] = field(default_factory=list)
    filename: str = "<unknown>"
