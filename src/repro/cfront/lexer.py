"""Tokenizer for the C subset.

Handles the preprocessor the way the analysis needs it: ``#include`` lines
vanish, object-like ``#define NAME <integer>`` macros are collected (glue
code defines tag numbers this way), and all other directives are skipped
line-wise.  Comments (both styles) are stripped.

The scanner is a single compiled master regex — one alternation with named
groups, maximal-munch punctuation baked into the pattern — driven in one
pass over the text.  Line/column positions are tracked incrementally while
scanning (tokens arrive in offset order), so no per-token binary search
over line starts is needed; this is the cold path of every batch sweep.
"""

from __future__ import annotations

import enum
import re

from ..source import Position, SourceFile, Span


class TokKind(enum.Enum):
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    CHAR = "char"
    PUNCT = "punct"
    EOF = "eof"


class Token:
    """One lexeme; a plain slotted class (immutable by convention) because
    the scanner allocates one per token on the cold path."""

    __slots__ = ("kind", "text", "span")

    def __init__(self, kind: TokKind, text: str, span: Span):
        self.kind = kind
        self.text = text
        self.span = span

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Token)
            and self.kind is other.kind
            and self.text == other.text
            and self.span == other.span
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.text, self.span))

    def __repr__(self) -> str:
        return f"Token({self.kind!r}, {self.text!r}, {self.span!r})"

    def is_punct(self, *texts: str) -> bool:
        return self.kind is TokKind.PUNCT and self.text in texts

    def is_ident(self, *texts: str) -> bool:
        return self.kind is TokKind.IDENT and (not texts or self.text in texts)

    def __str__(self) -> str:
        return self.text or "<eof>"


class LexError(Exception):
    def __init__(self, message: str, span: Span):
        self.span = span
        super().__init__(f"{span}: {message}")


#: Multi-character operators, longest first so maximal munch works.
_PUNCTS = [
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
]

_DEFINE_RE = re.compile(
    r"#\s*define\s+([A-Za-z_][A-Za-z0-9_]*)\s+(.+?)\s*$", re.MULTILINE
)

_INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"\n]+)"', re.MULTILINE)

#: The whole token grammar as one alternation.  Group order encodes the
#: old scanner's priorities: comments and directives are trivia, numbers
#: try hex before octal before decimal, and the ``BAD*`` groups catch the
#: openers of unterminated literals so they raise instead of mis-lexing.
#: Alternation order is semantic where first characters overlap (the
#: comment groups must precede PUNCT's ``/``; the BAD* groups catch what
#: their real groups reject) and frequency-tuned where they don't
#: (identifiers and punctuation lead).  Group *numbers* drive the token
#: loop's dispatch — keep `_G_*` below in sync.
_MASTER_RE = re.compile(
    r"""
      (?P<IDENT>[A-Za-z_][A-Za-z0-9_]*)
    | (?P<WS>[ \t\r\n]+)
    | (?P<NUMBER>(?:0[xX][0-9a-fA-F]+|0[0-7]+|[0-9]+)[uUlL]*)
    | (?P<LINECOMMENT>//[^\n]*)
    | (?P<BLOCKCOMMENT>/\*.*?\*/)
    | (?P<BADCOMMENT>/\*)
    | (?P<DIRECTIVE>\#(?:[^\n]*\\\n)*[^\n]*)
    | (?P<STRING>"(?:\\.|[^"\\])*")
    | (?P<CHAR>'(?:\\.|[^\\])')
    | (?P<PUNCT>%s)
    | (?P<BADSTRING>")
    | (?P<BADCHAR>')
    """
    % "|".join(re.escape(p) for p in _PUNCTS),
    re.VERBOSE | re.DOTALL,
)

_G_IDENT = _MASTER_RE.groupindex["IDENT"]
_G_WS = _MASTER_RE.groupindex["WS"]
_G_NUMBER = _MASTER_RE.groupindex["NUMBER"]
_G_LINECOMMENT = _MASTER_RE.groupindex["LINECOMMENT"]
_G_BLOCKCOMMENT = _MASTER_RE.groupindex["BLOCKCOMMENT"]
_G_BADCOMMENT = _MASTER_RE.groupindex["BADCOMMENT"]
_G_DIRECTIVE = _MASTER_RE.groupindex["DIRECTIVE"]
_G_STRING = _MASTER_RE.groupindex["STRING"]
_G_CHAR = _MASTER_RE.groupindex["CHAR"]
_G_PUNCT = _MASTER_RE.groupindex["PUNCT"]
_G_BADSTRING = _MASTER_RE.groupindex["BADSTRING"]

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
    "\\": "\\",
    "'": "'",
    '"': '"',
}

_STRING_ESCAPE_RE = re.compile(r"\\(.)", re.DOTALL)


def _unescape(match: "re.Match[str]") -> str:
    char = match.group(1)
    return _ESCAPES.get(char, char)


def scan_includes(text: str) -> tuple[str, ...]:
    """Quoted (project-local) ``#include`` targets, in order, deduplicated.

    Angle-bracket includes are system headers and never part of the
    project's dependency graph; quoted ones name files an edit to which
    must invalidate the including translation unit, so the incremental
    engine records them even though tokenization drops the directive.
    """
    seen: dict[str, None] = {}
    for match in _INCLUDE_RE.finditer(text):
        seen.setdefault(match.group(1))
    return tuple(seen)


class Lexer:
    """Produces the token list for a :class:`SourceFile`."""

    def __init__(self, source: SourceFile):
        self.source = source
        self.text = source.text
        self.pos = 0
        self.defines: dict[str, int] = {}

    def tokenize(self) -> list[Token]:
        self._collect_defines()
        source = self.source
        text = self.text
        length = len(text)
        filename = source.filename
        defines = self.defines
        tokens: list[Token] = []
        append = tokens.append
        scan = _MASTER_RE.match
        count_nl = text.count
        # incremental line/column state: tokens arrive in offset order, so
        # one left-to-right pass replaces per-token bisects over line starts
        line = 1
        line_start = 0
        pos = 0
        while pos < length:
            match = scan(text, pos)
            if match is None:
                raise LexError(
                    f"unexpected character {text[pos]!r}",
                    source.span(pos, pos + 1),
                )
            group = match.lastindex
            end = match.end()
            if group == _G_IDENT:
                word = match.group()
                span = Span(
                    filename,
                    Position(pos, line, pos - line_start + 1),
                    Position(end, line, end - line_start + 1),
                )
                value = defines.get(word)
                if value is not None:
                    append(Token(TokKind.NUMBER, str(value), span))
                else:
                    append(Token(TokKind.IDENT, word, span))
                pos = end
                continue
            if group == _G_WS:
                newlines = count_nl("\n", pos, end)
                if newlines:
                    line += newlines
                    line_start = text.rfind("\n", pos, end) + 1
                pos = end
                continue
            if group == _G_PUNCT:
                span = Span(
                    filename,
                    Position(pos, line, pos - line_start + 1),
                    Position(end, line, end - line_start + 1),
                )
                append(Token(TokKind.PUNCT, match.group(), span))
                pos = end
                continue
            if group == _G_NUMBER:
                span = Span(
                    filename,
                    Position(pos, line, pos - line_start + 1),
                    Position(end, line, end - line_start + 1),
                )
                append(Token(TokKind.NUMBER, str(self._number_value(match.group())), span))
                pos = end
                continue
            if group == _G_STRING or group == _G_CHAR:
                start_pos = Position(pos, line, pos - line_start + 1)
                newlines = count_nl("\n", pos, end)
                if newlines:
                    line += newlines
                    line_start = text.rfind("\n", pos, end) + 1
                span = Span(filename, start_pos, Position(end, line, end - line_start + 1))
                raw = match.group()
                if group == _G_STRING:
                    append(Token(TokKind.STRING, _STRING_ESCAPE_RE.sub(_unescape, raw[1:-1]), span))
                else:
                    char = _ESCAPES.get(raw[2], raw[2]) if raw[1] == "\\" else raw[1]
                    append(Token(TokKind.NUMBER, str(ord(char)), span))
                pos = end
                continue
            if group == _G_LINECOMMENT or group == _G_DIRECTIVE or group == _G_BLOCKCOMMENT:
                newlines = count_nl("\n", pos, end)
                if newlines:
                    line += newlines
                    line_start = text.rfind("\n", pos, end) + 1
                pos = end
                continue
            if group == _G_BADCOMMENT:
                raise LexError(
                    "unterminated comment", source.span(pos, length)
                )
            if group == _G_BADSTRING:
                raise LexError(
                    "unterminated string literal", source.span(pos, length)
                )
            # BADCHAR
            raise LexError(
                "unterminated character literal", source.span(pos, length)
            )
        self.pos = length
        eof_position = Position(length, line, length - line_start + 1)
        append(Token(TokKind.EOF, "", Span(filename, eof_position, eof_position)))
        return tokens

    # -- preprocessor-lite ---------------------------------------------------

    def _collect_defines(self) -> None:
        for match in _DEFINE_RE.finditer(self.text):
            name, body = match.group(1), match.group(2).strip()
            value = self._parse_int_literal(body)
            if value is not None:
                self.defines[name] = value

    @staticmethod
    def _parse_int_literal(text: str) -> int | None:
        text = text.strip()
        if text.startswith("(") and text.endswith(")"):
            text = text[1:-1].strip()
        try:
            return int(text, 0)
        except ValueError:
            return None

    @staticmethod
    def _number_value(text: str) -> int:
        """Integer value of a matched literal (suffix already in ``text``)."""
        digits = text.rstrip("uUlL")
        if digits.startswith(("0x", "0X")):
            return int(digits, 16)
        if len(digits) > 1 and digits.startswith("0"):
            try:
                return int(digits, 8)
            except ValueError:
                # "08"/"09": never octal-shaped; the old scanner read them
                # as decimal
                return int(digits, 10)
        return int(digits, 10)


def tokenize(source: SourceFile) -> list[Token]:
    return Lexer(source).tokenize()
