"""Tokenizer for the C subset.

Handles the preprocessor the way the analysis needs it: ``#include`` lines
vanish, object-like ``#define NAME <integer>`` macros are collected (glue
code defines tag numbers this way), and all other directives are skipped
line-wise.  Comments (both styles) are stripped.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from ..source import SourceFile, Span


class TokKind(enum.Enum):
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    CHAR = "char"
    PUNCT = "punct"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokKind
    text: str
    span: Span

    def is_punct(self, *texts: str) -> bool:
        return self.kind is TokKind.PUNCT and self.text in texts

    def is_ident(self, *texts: str) -> bool:
        return self.kind is TokKind.IDENT and (not texts or self.text in texts)

    def __str__(self) -> str:
        return self.text or "<eof>"


class LexError(Exception):
    def __init__(self, message: str, span: Span):
        self.span = span
        super().__init__(f"{span}: {message}")


#: Multi-character operators, longest first so maximal munch works.
_PUNCTS = [
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
]

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_HEX_RE = re.compile(r"0[xX][0-9a-fA-F]+")
_OCT_RE = re.compile(r"0[0-7]+")
_DEC_RE = re.compile(r"[0-9]+")
_INT_SUFFIX_RE = re.compile(r"[uUlL]*")
_DEFINE_RE = re.compile(
    r"#\s*define\s+([A-Za-z_][A-Za-z0-9_]*)\s+(.+?)\s*$", re.MULTILINE
)

_INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"\n]+)"', re.MULTILINE)


def scan_includes(text: str) -> tuple[str, ...]:
    """Quoted (project-local) ``#include`` targets, in order, deduplicated.

    Angle-bracket includes are system headers and never part of the
    project's dependency graph; quoted ones name files an edit to which
    must invalidate the including translation unit, so the incremental
    engine records them even though tokenization drops the directive.
    """
    seen: dict[str, None] = {}
    for match in _INCLUDE_RE.finditer(text):
        seen.setdefault(match.group(1))
    return tuple(seen)


class Lexer:
    """Produces the token list for a :class:`SourceFile`."""

    def __init__(self, source: SourceFile):
        self.source = source
        self.text = source.text
        self.pos = 0
        self.defines: dict[str, int] = {}

    def tokenize(self) -> list[Token]:
        self._collect_defines()
        tokens: list[Token] = []
        while True:
            self._skip_trivia()
            if self.pos >= len(self.text):
                break
            token = self._next_token()
            if token is not None:
                tokens.append(token)
        tokens.append(
            Token(TokKind.EOF, "", self.source.span(self.pos, self.pos))
        )
        return tokens

    # -- preprocessor-lite ---------------------------------------------------

    def _collect_defines(self) -> None:
        for match in _DEFINE_RE.finditer(self.text):
            name, body = match.group(1), match.group(2).strip()
            value = self._parse_int_literal(body)
            if value is not None:
                self.defines[name] = value

    @staticmethod
    def _parse_int_literal(text: str) -> int | None:
        text = text.strip()
        if text.startswith("(") and text.endswith(")"):
            text = text[1:-1].strip()
        try:
            return int(text, 0)
        except ValueError:
            return None

    # -- scanning -------------------------------------------------------------

    def _skip_trivia(self) -> None:
        while self.pos < len(self.text):
            char = self.text[self.pos]
            if char in " \t\r\n":
                self.pos += 1
            elif self.text.startswith("//", self.pos):
                end = self.text.find("\n", self.pos)
                self.pos = len(self.text) if end == -1 else end
            elif self.text.startswith("/*", self.pos):
                end = self.text.find("*/", self.pos + 2)
                if end == -1:
                    raise LexError(
                        "unterminated comment",
                        self.source.span(self.pos, len(self.text)),
                    )
                self.pos = end + 2
            elif char == "#":
                # directive: skip to end of (possibly continued) line
                end = self.pos
                while end < len(self.text):
                    newline = self.text.find("\n", end)
                    if newline == -1:
                        end = len(self.text)
                        break
                    if self.text[newline - 1] == "\\":
                        end = newline + 1
                        continue
                    end = newline
                    break
                self.pos = end
            else:
                return

    def _next_token(self) -> Token | None:
        start = self.pos
        char = self.text[start]

        if match := _IDENT_RE.match(self.text, start):
            self.pos = match.end()
            name = match.group()
            if name in self.defines:
                return Token(
                    TokKind.NUMBER,
                    str(self.defines[name]),
                    self.source.span(start, self.pos),
                )
            return Token(TokKind.IDENT, name, self.source.span(start, self.pos))

        for pattern, base in ((_HEX_RE, 16), (_OCT_RE, 8), (_DEC_RE, 10)):
            if match := pattern.match(self.text, start):
                end = match.end()
                suffix = _INT_SUFFIX_RE.match(self.text, end)
                self.pos = suffix.end() if suffix else end
                value = int(match.group(), base)
                return Token(
                    TokKind.NUMBER, str(value), self.source.span(start, self.pos)
                )

        if char == '"':
            return self._string_token(start)
        if char == "'":
            return self._char_token(start)

        for punct in _PUNCTS:
            if self.text.startswith(punct, start):
                self.pos = start + len(punct)
                return Token(
                    TokKind.PUNCT, punct, self.source.span(start, self.pos)
                )

        raise LexError(
            f"unexpected character {char!r}", self.source.span(start, start + 1)
        )

    def _string_token(self, start: int) -> Token:
        pos = start + 1
        chars: list[str] = []
        while pos < len(self.text):
            char = self.text[pos]
            if char == "\\" and pos + 1 < len(self.text):
                chars.append(self._escape(self.text[pos + 1]))
                pos += 2
            elif char == '"':
                self.pos = pos + 1
                return Token(
                    TokKind.STRING, "".join(chars), self.source.span(start, self.pos)
                )
            else:
                chars.append(char)
                pos += 1
        raise LexError(
            "unterminated string literal", self.source.span(start, len(self.text))
        )

    def _char_token(self, start: int) -> Token:
        pos = start + 1
        if pos >= len(self.text):
            raise LexError(
                "unterminated character literal",
                self.source.span(start, len(self.text)),
            )
        if self.text[pos] == "\\":
            value = ord(self._escape(self.text[pos + 1]))
            pos += 2
        else:
            value = ord(self.text[pos])
            pos += 1
        if pos >= len(self.text) or self.text[pos] != "'":
            raise LexError(
                "unterminated character literal", self.source.span(start, pos)
            )
        self.pos = pos + 1
        return Token(TokKind.NUMBER, str(value), self.source.span(start, self.pos))

    @staticmethod
    def _escape(char: str) -> str:
        return {
            "n": "\n",
            "t": "\t",
            "r": "\r",
            "0": "\0",
            "\\": "\\",
            "'": "'",
            '"': '"',
        }.get(char, char)


def tokenize(source: SourceFile) -> list[Token]:
    return Lexer(source).tokenize()
