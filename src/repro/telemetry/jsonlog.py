"""Structured JSON event logging: one compact object per line.

The async daemon writes one event per served request (``--log-json
PATH``): request id, method, outcome (``ok`` / ``error`` / ``shed``),
duration in milliseconds, and — for coalesced checks — which role the
request played (``memo`` / ``leader`` / ``follower``).  Lines are
flushed as written so a tailing collector never waits on a buffer, and
a lock keeps concurrent writers line-atomic.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import IO, Optional


class JsonLogger:
    """Append-only JSON-lines event sink."""

    def __init__(self, path: str | os.PathLike | None = None, stream: Optional[IO[str]] = None):
        if stream is not None:
            self._fh = stream
            self._owned = False
        elif path is not None:
            self._fh = open(path, "a", encoding="utf-8")
            self._owned = True
        else:
            self._fh = sys.stderr
            self._owned = False
        self._lock = threading.Lock()

    def emit(self, event: dict) -> None:
        """Write one event; a ``ts`` (unix seconds) is stamped if absent."""
        if "ts" not in event:
            event = {"ts": round(time.time(), 6), **event}
        line = json.dumps(event, sort_keys=True, separators=(",", ":"))
        with self._lock:
            self._fh.write(line + "\n")
            self._fh.flush()

    def close(self) -> None:
        if self._owned:
            with self._lock:
                self._fh.close()

    def __enter__(self) -> "JsonLogger":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
