"""Context-local span tracing with Chrome ``trace_event`` export.

A :class:`Tracer` collects finished spans as plain Chrome trace-event
dicts (``ph: "X"`` complete events): wall-clock ``ts`` in microseconds
(so spans recorded in different processes land on one timeline) and a
``perf_counter``-derived ``dur``.  Perfetto and ``chrome://tracing``
nest events on the same pid/tid by time containment, so nesting falls
out of the call structure with no explicit parent links.

Two installation scopes:

* :func:`install` makes a tracer the **process-global** fallback — the
  CLI installs one for the whole run, the daemon for its lifetime.
  Worker *threads* see it without any context plumbing.
* :func:`use` binds a tracer to the **current context** (a
  ``ContextVar``), shadowing the global one.  The worker entry point
  wraps each traced request in a fresh contextual tracer so its spans
  can be exported onto the :class:`~repro.engine.jobs.CheckResult` and
  shipped across the process boundary.

Instrumentation sites call :func:`span` unconditionally; with no tracer
anywhere it returns a shared no-op context manager after one module
bool check — the ``ContextVar`` read only happens while some tracer is
actually bound.  ``bench_cold.py`` measures exactly that residue by
flipping :func:`set_hooks_enabled`.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import Any, Iterable, Optional

_ACTIVE: ContextVar[Optional["Tracer"]] = ContextVar(
    "mlffi_tracer", default=None
)
_GLOBAL: Optional["Tracer"] = None

#: master switch for the instrumentation hooks themselves; only
#: ``bench_cold.py`` flips this, to measure what the *disabled* hooks
#: cost relative to no hooks at all
_HOOKS = True

#: True while any tracer is bound anywhere (process-global install or a
#: live :func:`use` binding in *some* context).  ``span()`` checks this
#: plain module bool first, so the idle path — no tracing requested —
#: never pays the ``ContextVar`` read; it is exactly as cheap as the
#: bypassed path ``set_hooks_enabled(False)`` measures against.
_BOUND = False
_USERS = 0
_BOUND_LOCK = threading.Lock()


def _refresh_bound() -> None:
    global _BOUND
    _BOUND = _GLOBAL is not None or _USERS > 0


class _NoopSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NOOP = _NoopSpan()


class Span:
    """One open span; finishes into a trace-event dict on ``__exit__``."""

    __slots__ = ("_tracer", "name", "cat", "args", "_ts_us", "_start")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        cat: str,
        args: Optional[dict],
    ):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args

    def __enter__(self) -> "Span":
        self._ts_us = time.time_ns() // 1000
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        dur_us = max(0, round((time.perf_counter() - self._start) * 1e6))
        event: dict[str, Any] = {
            "name": self.name,
            "cat": self.cat or "phase",
            "ph": "X",
            "ts": self._ts_us,
            "dur": dur_us,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
        }
        if self.args:
            event["args"] = self.args
        self._tracer._append(event)
        return False


class Tracer:
    """A thread-safe collector of finished trace events."""

    def __init__(self) -> None:
        self._events: list[dict] = []
        self._lock = threading.Lock()

    def span(
        self, name: str, cat: str = "", args: Optional[dict] = None
    ) -> Span:
        return Span(self, name, cat, args)

    def _append(self, event: dict) -> None:
        with self._lock:
            self._events.append(event)

    def absorb(self, events: Iterable[dict]) -> None:
        """Merge events recorded elsewhere (a worker process, another
        tracer) into this timeline."""
        with self._lock:
            self._events.extend(events)

    def export(self) -> list[dict]:
        """The events so far, in a caller-owned list."""
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


def current_tracer() -> Optional[Tracer]:
    """The tracer ``span()`` would record into, or None when disabled."""
    if not _HOOKS:
        return None
    tracer = _ACTIVE.get()
    return tracer if tracer is not None else _GLOBAL


def span(name: str, cat: str = "", **args) -> Any:
    """Open a span on the active tracer; a shared no-op when disabled.

    This is the universal instrumentation hook: cheap enough to leave in
    per-unit and per-request paths unconditionally.
    """
    if not _BOUND or not _HOOKS:
        return _NOOP
    tracer = _ACTIVE.get()
    if tracer is None:
        tracer = _GLOBAL
        if tracer is None:
            return _NOOP
    return Span(tracer, name, cat, args or None)


def install(tracer: Optional[Tracer]) -> None:
    """Set (or, with None, clear) the process-global fallback tracer."""
    global _GLOBAL
    with _BOUND_LOCK:
        _GLOBAL = tracer
        _refresh_bound()


def uninstall() -> None:
    install(None)


@contextmanager
def use(tracer: Tracer):
    """Bind ``tracer`` to the current context, shadowing the global one."""
    global _USERS
    token = _ACTIVE.set(tracer)
    with _BOUND_LOCK:
        _USERS += 1
        _refresh_bound()
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)
        with _BOUND_LOCK:
            _USERS -= 1
            _refresh_bound()


def set_hooks_enabled(enabled: bool) -> None:
    """Benchmark-only: bypass even the disabled-path ContextVar read, so
    the residual cost of the hooks themselves can be measured."""
    global _HOOKS
    _HOOKS = enabled


# -- export ----------------------------------------------------------------


def write_trace(path: str | os.PathLike, events: list[dict]) -> None:
    """Write a Chrome/Perfetto-loadable ``trace_event`` JSON file."""
    document = {"traceEvents": events, "displayTimeUnit": "ms"}
    Path(path).write_text(
        json.dumps(document, separators=(",", ":"), sort_keys=True) + "\n",
        encoding="utf-8",
    )


def aggregate_phases(events: Iterable[dict]) -> dict[str, dict]:
    """Fold a trace into a per-phase breakdown for JSON reports.

    Unit- and request-level spans are named after what they traced, so
    they aggregate under their category (one ``unit`` row, not one row
    per translation unit); phase spans aggregate by name.
    """
    phases: dict[str, dict] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        cat = event.get("cat", "")
        key = cat if cat in ("unit", "request") else event.get("name", "?")
        row = phases.get(key)
        if row is None:
            row = phases[key] = {"count": 0, "seconds": 0.0}
        row["count"] += 1
        row["seconds"] += event.get("dur", 0) / 1e6
    for row in phases.values():
        row["seconds"] = round(row["seconds"], 6)
    return dict(sorted(phases.items()))
