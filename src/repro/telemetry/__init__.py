"""Zero-dependency tracing + metrics for every layer of the checker.

Three small pieces, all stdlib-only and all no-op-cheap when disabled:

:mod:`~repro.telemetry.spans`
    A context-local :class:`~repro.telemetry.spans.Tracer` recording
    nested spans (batch → unit → parse/lower/infer…; server → request →
    engine/encode) with monotonic durations, exportable as Chrome
    ``trace_event`` JSON for ``chrome://tracing`` / Perfetto.  Spans
    recorded inside worker processes ride back on
    :class:`~repro.engine.jobs.CheckResult` and are absorbed into the
    parent tracer, so multiprocessing and streaming runs produce one
    coherent trace.
:mod:`~repro.telemetry.metrics`
    A process-wide registry of counters/gauges/histograms with a
    Prometheus text exposition, plus :class:`Exposition` for rendering
    pull-style snapshots (cache-tier stats, load gauge, coalescer) next
    to the pushed instruments.
:mod:`~repro.telemetry.jsonlog`
    A line-oriented structured JSON event logger for the async daemon
    (one object per request: id, method, outcome, duration, coalesce
    role).

The cardinal rule is that **disabled telemetry must cost nothing
measurable**: ``span(...)`` with no tracer installed is one module-flag
check plus one ``ContextVar`` read (``benchmarks/bench_cold.py`` gates
the hook overhead below 2%), and every metrics helper bails on a single
module flag before touching the registry.
"""

from .jsonlog import JsonLogger
from .metrics import (
    REGISTRY,
    Exposition,
    MetricsRegistry,
    metrics_enabled,
    set_metrics_enabled,
)
from .spans import (
    Span,
    Tracer,
    aggregate_phases,
    current_tracer,
    install,
    set_hooks_enabled,
    span,
    uninstall,
    use,
    write_trace,
)

__all__ = [
    "JsonLogger",
    "REGISTRY",
    "Exposition",
    "MetricsRegistry",
    "metrics_enabled",
    "set_metrics_enabled",
    "Span",
    "Tracer",
    "aggregate_phases",
    "current_tracer",
    "install",
    "set_hooks_enabled",
    "span",
    "uninstall",
    "use",
    "write_trace",
]
