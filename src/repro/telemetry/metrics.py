"""Process-wide metrics registry with Prometheus text exposition.

Instruments are the push side: code records counters, gauges, and
histograms into the module-level :data:`REGISTRY` through the gated
helpers at the bottom (one module-flag check when disabled, so hot
paths can call them unconditionally).  :class:`Exposition` is the pull
side: the ``metrics`` RPC and ``batch --metrics-out`` fold existing
stats snapshots (cache tiers, load gauge, coalescer) into the same
text format without any live instrumentation.

The exposition format is the Prometheus ``text/plain; version=0.0.4``
subset: ``# HELP`` / ``# TYPE`` headers, ``name{label="v"} value``
samples, and ``_bucket``/``_sum``/``_count`` rows for histograms with
cumulative ``le`` buckets.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence

PROM_CONTENT_TYPE = "text/plain; version=0.0.4"

#: latency buckets (seconds) sized for per-unit analysis and per-request
#: service times: sub-ms memo hits up to multi-second cold sweeps
DEFAULT_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def _format_labels(labelnames: Sequence[str], labelvalues: Sequence[str]) -> str:
    if not labelnames:
        return ""
    pairs = []
    for name, value in zip(labelnames, labelvalues):
        escaped = (
            str(value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
        )
        pairs.append(f'{name}="{escaped}"')
    return "{" + ",".join(pairs) + "}"


class _Instrument:
    """Shared label bookkeeping for all three instrument kinds."""

    kind = "untyped"

    def __init__(
        self, name: str, help_text: str, labelnames: Sequence[str] = ()
    ):
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _key(self, labels: dict) -> tuple:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _header(self) -> list[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        return lines


class Counter(_Instrument):
    kind = "counter"

    def __init__(self, name, help_text, labelnames=()):
        super().__init__(name, help_text, labelnames)
        self._values: dict[tuple, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def render(self) -> list[str]:
        with self._lock:
            items = sorted(self._values.items())
        lines = self._header()
        for key, value in items:
            labels = _format_labels(self.labelnames, key)
            lines.append(f"{self.name}{labels} {_format_value(value)}")
        return lines


class Gauge(Counter):
    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)


class Histogram(_Instrument):
    kind = "histogram"

    def __init__(
        self,
        name,
        help_text,
        labelnames=(),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help_text, labelnames)
        self.buckets = tuple(sorted(buckets))
        #: key -> [bucket counts..., +Inf count, sum]
        self._series: dict[tuple, list[float]] = {}

    def observe(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = [0.0] * (len(self.buckets) + 2)
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    series[index] += 1
            series[len(self.buckets)] += 1  # +Inf
            series[len(self.buckets) + 1] += value  # sum

    def count(self, **labels) -> int:
        with self._lock:
            series = self._series.get(self._key(labels))
            return int(series[len(self.buckets)]) if series else 0

    def render(self) -> list[str]:
        with self._lock:
            items = sorted(
                (key, list(series)) for key, series in self._series.items()
            )
        lines = self._header()
        for key, series in items:
            for index, bound in enumerate(self.buckets):
                labels = _format_labels(
                    self.labelnames + ("le",), key + (repr(bound),)
                )
                lines.append(
                    f"{self.name}_bucket{labels} "
                    f"{_format_value(series[index])}"
                )
            inf_labels = _format_labels(
                self.labelnames + ("le",), key + ("+Inf",)
            )
            total = series[len(self.buckets)]
            lines.append(
                f"{self.name}_bucket{inf_labels} {_format_value(total)}"
            )
            plain = _format_labels(self.labelnames, key)
            lines.append(
                f"{self.name}_sum{plain} "
                f"{_format_value(round(series[len(self.buckets) + 1], 9))}"
            )
            lines.append(f"{self.name}_count{plain} {_format_value(total)}")
        return lines


class MetricsRegistry:
    """Get-or-create instrument store; rendering is deterministic."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}

    def _get(self, cls, name, help_text, labelnames, **kwargs):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = cls(name, help_text, labelnames, **kwargs)
                self._instruments[name] = instrument
            elif not isinstance(instrument, cls) or (
                instrument.labelnames != tuple(labelnames)
            ):
                raise ValueError(
                    f"metric {name} already registered with a different "
                    "type or label set"
                )
            return instrument

    def counter(self, name, help_text="", labelnames=()) -> Counter:
        return self._get(Counter, name, help_text, labelnames)

    def gauge(self, name, help_text="", labelnames=()) -> Gauge:
        return self._get(Gauge, name, help_text, labelnames)

    def histogram(
        self, name, help_text="", labelnames=(), buckets=DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get(
            Histogram, name, help_text, labelnames, buckets=buckets
        )

    def render(self) -> str:
        with self._lock:
            instruments = sorted(self._instruments.items())
        lines: list[str] = []
        for _name, instrument in instruments:
            lines.extend(instrument.render())
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Drop every instrument (tests and fresh benchmark runs)."""
        with self._lock:
            self._instruments.clear()


REGISTRY = MetricsRegistry()

_ENABLED = False


def set_metrics_enabled(enabled: bool) -> None:
    global _ENABLED
    _ENABLED = enabled


def metrics_enabled() -> bool:
    return _ENABLED


# -- gated hot-path helpers ------------------------------------------------


def observe_unit(dialect: str, seconds: float, *, fresh: bool) -> None:
    """Per-unit latency histogram, split fresh-analysis vs cache-hit."""
    if not _ENABLED:
        return
    REGISTRY.histogram(
        "mlffi_unit_seconds",
        "Per-unit wall time by dialect and probe outcome",
        ("dialect", "outcome"),
    ).observe(seconds, dialect=dialect, outcome="fresh" if fresh else "hit")


def count_cache(tier: str, *, hit: bool) -> None:
    """Cache probe outcome by serving tier ('none' for misses)."""
    if not _ENABLED:
        return
    REGISTRY.counter(
        "mlffi_cache_probes_total",
        "Cache probes by outcome and serving tier",
        ("tier", "outcome"),
    ).inc(tier=tier or "none", outcome="hit" if hit else "miss")


def observe_stream_window(occupancy: int) -> None:
    """In-flight window occupancy sampled at each streaming submit."""
    if not _ENABLED:
        return
    REGISTRY.histogram(
        "mlffi_stream_window_occupancy",
        "Streaming scheduler in-flight window occupancy",
        (),
        buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
    ).observe(occupancy)


def count_link_conflicts(kind: str, amount: int = 1) -> None:
    if not _ENABLED or not amount:
        return
    REGISTRY.counter(
        "mlffi_link_conflicts_total",
        "Cross-unit link diagnostics by kind",
        ("kind",),
    ).inc(amount, kind=kind)


# -- pull-style exposition -------------------------------------------------


class Exposition:
    """Collects sample families, then renders one sorted text document.

    This is how snapshot-style numbers that already live elsewhere
    (cache ``stats()``, the load gauge, the coalescer) join the pushed
    instruments in a single Prometheus payload.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self._registry = registry
        #: name -> (kind, help, [(labelvalues tuple of pairs, value)])
        self._families: dict[str, tuple[str, str, list]] = {}

    def add(
        self,
        name: str,
        value: float,
        *,
        kind: str = "gauge",
        help_text: str = "",
        **labels,
    ) -> None:
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = (kind, help_text, [])
        family[2].append((tuple(sorted(labels.items())), value))

    def add_stats(
        self, name_prefix: str, stats: dict, *, kind: str = "counter", **labels
    ) -> None:
        """One family per numeric key of a ``stats()`` dict."""
        for key, value in sorted(stats.items()):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            self.add(f"{name_prefix}_{key}", value, kind=kind, **labels)

    def render(self) -> str:
        lines: list[str] = []
        for name in sorted(self._families):
            kind, help_text, samples = self._families[name]
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for labelitems, value in sorted(samples):
                labelnames = tuple(k for k, _ in labelitems)
                labelvalues = tuple(v for _, v in labelitems)
                rendered = _format_labels(labelnames, labelvalues)
                lines.append(f"{name}{rendered} {_format_value(value)}")
        text = "\n".join(lines) + ("\n" if lines else "")
        if self._registry is not None:
            text += self._registry.render()
        return text
