"""Source files, positions and spans.

Every front end (OCaml and C) tokenizes from a :class:`SourceFile`, and every
diagnostic produced by the analysis points back at a :class:`Span` so that
messages can be rendered with file/line/column context, exactly like the
original tool (which reported locations through CIL).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Position:
    """A 0-based character offset resolved to 1-based line/column."""

    offset: int
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


@dataclass(frozen=True)
class Span:
    """A half-open range ``[start, end)`` inside one source file."""

    filename: str
    start: Position
    end: Position

    def __str__(self) -> str:
        return f"{self.filename}:{self.start}"

    def to_dict(self) -> dict:
        """JSON-able form, round-tripped by the batch-engine result cache."""
        return {
            "filename": self.filename,
            "start": [self.start.offset, self.start.line, self.start.column],
            "end": [self.end.offset, self.end.line, self.end.column],
        }

    @staticmethod
    def from_dict(data: dict) -> "Span":
        return Span(
            data["filename"],
            Position(*data["start"]),
            Position(*data["end"]),
        )

    @staticmethod
    def merge(first: "Span", last: "Span") -> "Span":
        """Smallest span covering both inputs (must share a file)."""
        if first.filename != last.filename:
            raise ValueError("cannot merge spans from different files")
        start = min(first.start, last.start, key=lambda p: p.offset)
        end = max(first.end, last.end, key=lambda p: p.offset)
        return Span(first.filename, start, end)


#: Span used for synthesized constructs that have no source location.
DUMMY_SPAN = Span(
    "<builtin>", Position(0, 0, 0), Position(0, 0, 0)
)


@dataclass
class SourceFile:
    """An in-memory source file with offset -> line/column resolution."""

    filename: str
    text: str
    _line_starts: list[int] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        starts = [0]
        for index, char in enumerate(self.text):
            if char == "\n":
                starts.append(index + 1)
        self._line_starts = starts

    def position(self, offset: int) -> Position:
        """Resolve a character offset to a :class:`Position`."""
        offset = max(0, min(offset, len(self.text)))
        line_index = bisect.bisect_right(self._line_starts, offset) - 1
        column = offset - self._line_starts[line_index] + 1
        return Position(offset, line_index + 1, column)

    def span(self, start_offset: int, end_offset: int) -> Span:
        """Build a span between two character offsets."""
        return Span(
            self.filename,
            self.position(start_offset),
            self.position(end_offset),
        )

    def line_text(self, line: int) -> str:
        """The text of a 1-based line, without its newline."""
        if not 1 <= line <= len(self._line_starts):
            return ""
        start = self._line_starts[line - 1]
        end = self.text.find("\n", start)
        if end == -1:
            end = len(self.text)
        return self.text[start:end]

    @property
    def line_count(self) -> int:
        """Number of lines in the file (an empty file has one)."""
        return len(self._line_starts)


def count_code_lines(text: str) -> int:
    """Count non-blank lines, the LoC measure used for Figure 9 rows."""
    return sum(1 for line in text.splitlines() if line.strip())
