"""Source files, positions and spans.

Every front end (OCaml and C) tokenizes from a :class:`SourceFile`, and every
diagnostic produced by the analysis points back at a :class:`Span` so that
messages can be rendered with file/line/column context, exactly like the
original tool (which reported locations through CIL).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field


class Position:
    """A 0-based character offset resolved to 1-based line/column.

    A plain slotted class rather than a frozen dataclass: the lexers build
    two of these per token on the cold path, and a hand-written ``__init__``
    constructs ~2.5x faster than the ``object.__setattr__`` loop a frozen
    dataclass pays.  Treat instances as immutable.
    """

    __slots__ = ("offset", "line", "column")

    def __init__(self, offset: int, line: int, column: int):
        self.offset = offset
        self.line = line
        self.column = column

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Position)
            and self.offset == other.offset
            and self.line == other.line
            and self.column == other.column
        )

    def __hash__(self) -> int:
        return hash((self.offset, self.line, self.column))

    def __repr__(self) -> str:
        return f"Position(offset={self.offset}, line={self.line}, column={self.column})"

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


class Span:
    """A half-open range ``[start, end)`` inside one source file.

    Slotted and immutable-by-convention, for the same cold-path reason as
    :class:`Position`.
    """

    __slots__ = ("filename", "start", "end")

    def __init__(self, filename: str, start: Position, end: Position):
        self.filename = filename
        self.start = start
        self.end = end

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Span)
            and self.filename == other.filename
            and self.start == other.start
            and self.end == other.end
        )

    def __hash__(self) -> int:
        return hash((self.filename, self.start, self.end))

    def __repr__(self) -> str:
        return f"Span({self.filename!r}, {self.start!r}, {self.end!r})"

    def __str__(self) -> str:
        return f"{self.filename}:{self.start}"

    def to_dict(self) -> dict:
        """JSON-able form, round-tripped by the batch-engine result cache."""
        return {
            "filename": self.filename,
            "start": [self.start.offset, self.start.line, self.start.column],
            "end": [self.end.offset, self.end.line, self.end.column],
        }

    @staticmethod
    def from_dict(data: dict) -> "Span":
        return Span(
            data["filename"],
            Position(*data["start"]),
            Position(*data["end"]),
        )

    @staticmethod
    def merge(first: "Span", last: "Span") -> "Span":
        """Smallest span covering both inputs (must share a file)."""
        if first.filename != last.filename:
            raise ValueError("cannot merge spans from different files")
        start = min(first.start, last.start, key=lambda p: p.offset)
        end = max(first.end, last.end, key=lambda p: p.offset)
        return Span(first.filename, start, end)


#: Span used for synthesized constructs that have no source location.
DUMMY_SPAN = Span(
    "<builtin>", Position(0, 0, 0), Position(0, 0, 0)
)


@dataclass(slots=True)
class SourceFile:
    """An in-memory source file with offset -> line/column resolution.

    The line-start table is computed lazily on the first position lookup
    and never pickled: check requests ship SourceFiles to worker
    processes, and each worker can rebuild the table far cheaper than the
    bytes cost to serialize it.
    """

    filename: str
    text: str
    _line_starts: list[int] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __getstate__(self) -> tuple[str, str]:
        return (self.filename, self.text)

    def __setstate__(self, state: tuple[str, str]) -> None:
        self.filename, self.text = state
        self._line_starts = None

    def _starts(self) -> list[int]:
        starts = self._line_starts
        if starts is None:
            starts = [0]
            find = self.text.find
            index = find("\n")
            while index != -1:
                starts.append(index + 1)
                index = find("\n", index + 1)
            self._line_starts = starts
        return starts

    def position(self, offset: int) -> Position:
        """Resolve a character offset to a :class:`Position`."""
        if offset < 0:
            offset = 0
        elif offset > len(self.text):
            offset = len(self.text)
        starts = self._starts()
        line_index = bisect.bisect_right(starts, offset) - 1
        column = offset - starts[line_index] + 1
        return Position(offset, line_index + 1, column)

    def span(self, start_offset: int, end_offset: int) -> Span:
        """Build a span between two character offsets."""
        return Span(
            self.filename,
            self.position(start_offset),
            self.position(end_offset),
        )

    def line_text(self, line: int) -> str:
        """The text of a 1-based line, without its newline."""
        starts = self._starts()
        if not 1 <= line <= len(starts):
            return ""
        start = starts[line - 1]
        end = self.text.find("\n", start)
        if end == -1:
            end = len(self.text)
        return self.text[start:end]

    @property
    def line_count(self) -> int:
        """Number of lines in the file (an empty file has one)."""
        return len(self._starts())


def count_code_lines(text: str) -> int:
    """Count non-blank lines, the LoC measure used for Figure 9 rows."""
    return sum(1 for line in text.splitlines() if line.strip())
