"""Rendering of the measured Figure 9 table, paper-vs-measured."""

from __future__ import annotations

from typing import Sequence

from .runner import SuiteResult
from .specs import PAPER_TOTALS


_HEADER = (
    "Program",
    "C loc",
    "OCaml loc",
    "Time (s)",
    "Errors",
    "Warnings",
    "False Pos",
    "Imprecision",
)


def _format_table(rows: Sequence[Sequence[object]], header: Sequence[str]) -> str:
    widths = [len(h) for h in header]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(str(cell)))

    def fmt(row: Sequence[object]) -> str:
        return "  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row))

    lines = [fmt(header), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def figure9_table(suite: SuiteResult) -> str:
    """The measured Figure 9 table (same columns as the paper)."""
    rows = []
    for result in suite.results:
        row = result.row()
        rows.append(
            (
                row["program"],
                row["c_loc"],
                row["ocaml_loc"],
                f"{row['time_s']:.2f}",
                row["errors"],
                row["warnings"],
                row["false_positives"],
                row["imprecision"],
            )
        )
    totals = suite.totals()
    rows.append(
        (
            "Total",
            "",
            "",
            "",
            totals["errors"],
            totals["warnings"],
            totals["false_positives"],
            totals["imprecision"],
        )
    )
    return _format_table(rows, _HEADER)


def comparison_table(suite: SuiteResult) -> str:
    """Paper counts vs measured counts, per program and in total."""
    header = (
        "Program",
        "Err (paper/ours)",
        "Warn (paper/ours)",
        "FP (paper/ours)",
        "Imp (paper/ours)",
        "Match",
    )
    rows = []
    for result in suite.results:
        spec = result.spec
        tally = result.tally
        rows.append(
            (
                spec.name,
                f"{spec.errors}/{tally['errors']}",
                f"{spec.warnings}/{tally['warnings']}",
                f"{spec.false_positives}/{tally['false_positives']}",
                f"{spec.imprecision}/{tally['imprecision']}",
                "yes" if result.matches_paper else "NO",
            )
        )
    totals = suite.totals()
    rows.append(
        (
            "Total",
            f"{PAPER_TOTALS['errors']}/{totals['errors']}",
            f"{PAPER_TOTALS['warnings']}/{totals['warnings']}",
            f"{PAPER_TOTALS['false_positives']}/{totals['false_positives']}",
            f"{PAPER_TOTALS['imprecision']}/{totals['imprecision']}",
            "yes" if totals == PAPER_TOTALS else "NO",
        )
    )
    return _format_table(rows, header)


def error_taxonomy(suite: SuiteResult) -> dict[str, int]:
    """The §5.2 error breakdown: how the 24 errors divide by kind."""
    from ..diagnostics import Category

    taxonomy: dict[str, int] = {}
    for result in suite.results:
        for diag in result.report.diagnostics:
            if diag.category is Category.ERROR:
                taxonomy[diag.kind.name] = taxonomy.get(diag.kind.name, 0) + 1
    return taxonomy
