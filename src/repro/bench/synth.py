"""Benchmark program synthesizer.

Given a :class:`~repro.bench.specs.BenchmarkSpec`, produce one OCaml module
and one C glue file whose sizes match the Figure 9 row's LoC budgets and
whose seeded defects produce exactly the row's report counts.  Ground truth
is carried alongside, so the harness can verify that every diagnostic lands
in its intended column (the paper established this by manual inspection;
we get it by construction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..diagnostics import Category
from ..source import count_code_lines
from .defects import DEFECT_TEMPLATES, FILLER_TEMPLATES, GlueUnit
from .specs import BenchmarkSpec


@dataclass
class SynthesizedBenchmark:
    """A generated OCaml+C project with its expected Figure 9 row."""

    name: str
    ocaml_source: str
    c_source: str
    expected: Dict[Category, int]
    units: List[GlueUnit] = field(default_factory=list)

    @property
    def c_loc(self) -> int:
        return count_code_lines(self.c_source)

    @property
    def ocaml_loc(self) -> int:
        return count_code_lines(self.ocaml_source)

    def expected_tally(self) -> dict[str, int]:
        return {
            "errors": self.expected[Category.ERROR],
            "warnings": self.expected[Category.WARNING],
            "false_positives": self.expected[Category.FALSE_POSITIVE_PRONE],
            "imprecision": self.expected[Category.IMPRECISION],
        }


_C_HEADER = """\
#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>
"""

_ML_HEADER = "(* generated glue module: {name} *)\n"


def _ocaml_filler_lines(count: int, salt: str) -> str:
    """Plain OCaml code the extractor skips; pads the .ml LoC budget."""
    lines = []
    for index in range(count):
        lines.append(
            f"let helper_{salt}_{index} x = x + {index % 7} "
            f"(* convenience wrapper {index} *)"
        )
    return "\n".join(lines) + ("\n" if lines else "")


def synthesize(spec: BenchmarkSpec, unique_prefix: int = 0) -> SynthesizedBenchmark:
    """Build the benchmark program for one Figure 9 row."""
    units: List[GlueUnit] = []
    expected: Dict[Category, int] = {category: 0 for category in Category}

    index = unique_prefix * 100_000
    for seed in spec.seeds:
        template = DEFECT_TEMPLATES[seed.kind]
        for _ in range(seed.count):
            unit = template(index)
            index += 1
            units.append(unit)
            for category, count in unit.expected.items():
                expected[category] += count

    # Fill the C LoC budget with correct glue, round-robin over templates.
    ml_parts = [unit.ml for unit in units if unit.ml]
    c_parts = [unit.c for unit in units if unit.c]
    c_loc = count_code_lines(_C_HEADER + "\n".join(c_parts))
    filler_cursor = 0
    while c_loc < spec.c_loc:
        template = FILLER_TEMPLATES[filler_cursor % len(FILLER_TEMPLATES)]
        filler_cursor += 1
        unit = template(index)
        index += 1
        units.append(unit)
        ml_parts.append(unit.ml)
        c_parts.append(unit.c)
        c_loc += count_code_lines(unit.c)

    ocaml_source = _ML_HEADER.format(name=spec.name) + "\n".join(ml_parts)
    ml_loc = count_code_lines(ocaml_source)
    if ml_loc < spec.ocaml_loc:
        ocaml_source += _ocaml_filler_lines(
            spec.ocaml_loc - ml_loc, salt=str(unique_prefix)
        )

    return SynthesizedBenchmark(
        name=spec.name,
        ocaml_source=ocaml_source,
        c_source=_C_HEADER + "\n".join(c_parts),
        expected=expected,
        units=units,
    )


def synthesize_scaled(
    base: BenchmarkSpec, c_loc: int, unique_prefix: int = 0
) -> SynthesizedBenchmark:
    """A defect-free variant of ``base`` scaled to a C LoC target.

    Used by the scaling benchmark (analysis time vs code size).
    """
    scaled = BenchmarkSpec(
        name=f"{base.name}@{c_loc}",
        c_loc=c_loc,
        ocaml_loc=0,
        paper_time_s=0.0,
        errors=0,
        warnings=0,
        false_positives=0,
        imprecision=0,
        seeds=(),
    )
    return synthesize(scaled, unique_prefix)
