"""Benchmark specifications mirroring paper Figure 9.

Each spec names one of the eleven glue libraries the paper analyzed, its
code-size budgets, and — following the §5.2 narrative — the exact defect
seeds whose detections should land in each Figure 9 column:

* *errors* (24 total): 3 unregistered heap pointers (ftplib, lablgl,
  lablgtk), 2 register-then-plain-return leaks (ocaml-mad, ocaml-vorbis),
  and 19 type mismatches (Val_int/Int_val swaps in ocaml-ssl, ocaml-glpk
  and lablgtk; an option mistreated as its payload; and similar);
* *warnings* (22): trailing-unit arity mismatches everywhere plus the
  ``gz`` polymorphic-seek idiom;
* *false positives* (214): polymorphic variants (the lablgl/lablgtk GL/GTK
  enum idiom) and pointer arithmetic disguised as integer arithmetic;
* *imprecision* (75): statically unknown offsets, global values, calls
  through function pointers, address-taken values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class DefectSeed:
    """``count`` instances of one defect class to inject."""

    kind: str
    count: int


@dataclass(frozen=True)
class BenchmarkSpec:
    """One Figure 9 row."""

    name: str
    c_loc: int
    ocaml_loc: int
    paper_time_s: float
    errors: int
    warnings: int
    false_positives: int
    imprecision: int
    seeds: Tuple[DefectSeed, ...] = ()

    @property
    def expected(self) -> dict[str, int]:
        return {
            "errors": self.errors,
            "warnings": self.warnings,
            "false_positives": self.false_positives,
            "imprecision": self.imprecision,
        }


def _seeds(**kinds: int) -> Tuple[DefectSeed, ...]:
    return tuple(DefectSeed(kind, count) for kind, count in kinds.items() if count)


#: The Figure 9 rows.  Defect mixes follow the §5.2 prose; where the paper
#: does not break a count down, the mix is chosen from the classes it names.
SUITE: tuple[BenchmarkSpec, ...] = (
    BenchmarkSpec(
        "apm-1.00", 124, 156, 1.3, 0, 0, 0, 0,
    ),
    BenchmarkSpec(
        "camlzip-1.01", 139, 820, 1.7, 0, 0, 0, 1,
        _seeds(unknown_offset=1),
    ),
    BenchmarkSpec(
        "ocaml-mad-0.1.0", 139, 38, 4.2, 1, 0, 0, 0,
        _seeds(register_leak=1),
    ),
    BenchmarkSpec(
        "ocaml-ssl-0.1.0", 187, 151, 1.5, 4, 2, 0, 0,
        _seeds(val_int_swap=2, int_val_swap=2, trailing_unit=2),
    ),
    BenchmarkSpec(
        "ocaml-glpk-0.1.1", 305, 147, 1.3, 4, 1, 0, 1,
        _seeds(val_int_swap=2, int_val_swap=2, trailing_unit=1, unknown_offset=1),
    ),
    BenchmarkSpec(
        "gz-0.5.5", 572, 192, 2.2, 0, 1, 0, 1,
        _seeds(poly_abuse=1, unknown_offset=1),
    ),
    BenchmarkSpec(
        "ocaml-vorbis-0.1.1", 1183, 443, 2.8, 1, 0, 0, 2,
        _seeds(register_leak=1, unknown_offset=1, global_value=1),
    ),
    BenchmarkSpec(
        "ftplib-0.12", 1401, 21, 1.7, 1, 2, 0, 1,
        _seeds(unprotected_value=1, trailing_unit=2, function_pointer=1),
    ),
    BenchmarkSpec(
        "lablgl-1.00", 1586, 1357, 7.5, 4, 5, 140, 20,
        _seeds(
            unprotected_value=1,
            val_int_swap=1,
            int_val_swap=1,
            missing_conversion=1,
            trailing_unit=5,
            poly_variant=120,
            disguised_arith=20,
            unknown_offset=12,
            global_value=4,
            function_pointer=4,
        ),
    ),
    BenchmarkSpec(
        "cryptokit-1.2", 2173, 2315, 5.4, 0, 0, 0, 1,
        _seeds(unknown_offset=1),
    ),
    BenchmarkSpec(
        "lablgtk-2.2.0", 5998, 14847, 61.3, 9, 11, 74, 48,
        _seeds(
            unprotected_value=1,
            val_int_swap=3,
            int_val_swap=2,
            option_misuse=1,
            missing_conversion=2,
            trailing_unit=11,
            poly_variant=54,
            disguised_arith=20,
            unknown_offset=30,
            global_value=6,
            function_pointer=4,
            address_taken=8,
        ),
    ),
)

#: Figure 9's bottom row.
PAPER_TOTALS = {
    "errors": 24,
    "warnings": 22,
    "false_positives": 214,
    "imprecision": 75,
}


def spec_by_name(name: str) -> BenchmarkSpec:
    for spec in SUITE:
        if spec.name == name:
            return spec
    raise KeyError(name)


def suite_totals() -> dict[str, int]:
    totals = {"errors": 0, "warnings": 0, "false_positives": 0, "imprecision": 0}
    for spec in SUITE:
        for key in totals:
            totals[key] += spec.expected[key]
    return totals
