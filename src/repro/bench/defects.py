"""Defect and filler templates for the synthesized benchmark suite.

Every template is a function ``index -> GlueUnit``: a paired OCaml
declaration and C definition with a known ground truth.  *Defect* templates
produce exactly one report of a known Figure 9 category; *filler* templates
are correct FFI idioms that must analyze clean — they provide the bulk of
the lines of code, mimicking the real libraries' surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict

from ..diagnostics import Category


@dataclass(frozen=True)
class GlueUnit:
    """One OCaml+C pairing with its expected report counts."""

    ml: str
    c: str
    expected: Dict[Category, int] = field(default_factory=dict)

    @property
    def is_clean(self) -> bool:
        return not any(self.expected.values())


def _unit(ml: str, c: str, **counts: int) -> GlueUnit:
    expected = {
        Category.ERROR: counts.get("errors", 0),
        Category.WARNING: counts.get("warnings", 0),
        Category.FALSE_POSITIVE_PRONE: counts.get("false_positives", 0),
        Category.IMPRECISION: counts.get("imprecision", 0),
    }
    return GlueUnit(ml=ml.strip() + "\n", c=c.strip() + "\n", expected=expected)


# ---------------------------------------------------------------------------
# Defect templates (§5.2's taxonomy)
# ---------------------------------------------------------------------------


def unprotected_value(i: int) -> GlueUnit:
    """Forgot to register a heap pointer before allocating (ftplib et al)."""
    return _unit(
        f'external wrap_{i} : string -> string ref = "ml_wrap_{i}"',
        f"""
value ml_wrap_{i}(value s)
{{
    value r = caml_alloc(1, 0);
    Store_field(r, 0, s);
    return r;
}}
""",
        errors=1,
    )


def register_leak(i: int) -> GlueUnit:
    """CAMLparam'd but released with plain return (ocaml-mad, ocaml-vorbis)."""
    return _unit(
        f'external strlen_{i} : string -> int = "ml_strlen_{i}"',
        f"""
value ml_strlen_{i}(value s)
{{
    CAMLparam1(s);
    int n = caml_string_length(s);
    return Val_int(n);
}}
""",
        errors=1,
    )


def val_int_swap(i: int) -> GlueUnit:
    """Val_int where Int_val was meant (ocaml-ssl, ocaml-glpk, lablgtk)."""
    return _unit(
        f'external succ_{i} : int -> int = "ml_succ_{i}"',
        f"""
value ml_succ_{i}(value n)
{{
    return Val_int(n);
}}
""",
        errors=1,
    )


def int_val_swap(i: int) -> GlueUnit:
    """Int_val applied to a C integer (the swap in the other direction)."""
    return _unit(
        f'external pred_{i} : int -> int = "ml_pred_{i}"',
        f"""
value ml_pred_{i}(value n)
{{
    int k = Int_val(n) - 1;
    return Int_val(k);
}}
""",
        errors=1,
    )


def option_misuse(i: int) -> GlueUnit:
    """Option dereferenced as its payload without a None test (lablgtk)."""
    return _unit(
        f'external default_{i} : int option -> int = "ml_default_{i}"',
        f"""
value ml_default_{i}(value o)
{{
    return Field(o, 0);
}}
""",
        errors=1,
    )


def missing_conversion(i: int) -> GlueUnit:
    """Returning a raw C int where the external promises an OCaml int."""
    return _unit(
        f'external calc_{i} : int -> int = "ml_calc_{i}"',
        f"""
value ml_calc_{i}(value n)
{{
    int r = Int_val(n) * 3;
    return r;
}}
""",
        errors=1,
    )


def trailing_unit(i: int) -> GlueUnit:
    """Trailing unit parameter omitted by the C definition (§5.2 warning)."""
    return _unit(
        f'external flush_{i} : int -> unit -> unit = "ml_flush_{i}"',
        f"""
value ml_flush_{i}(value fd)
{{
    int r = do_flush_{i}(Int_val(fd));
    return Val_unit;
}}
""",
        warnings=1,
    )


def poly_abuse(i: int) -> GlueUnit:
    """The gz seek idiom: a 'a parameter used at a concrete type."""
    return _unit(
        f"external seek_{i} : 'a -> int -> unit = \"ml_seek_{i}\"",
        f"""
value ml_seek_{i}(value chan, value pos)
{{
    int r = do_seek_{i}(Int_val(chan), Int_val(pos));
    return Val_unit;
}}
""",
        warnings=1,
    )


def poly_variant(i: int) -> GlueUnit:
    """Polymorphic variants are unsupported: flagged, usually correct code."""
    return _unit(
        f'external set_mode_{i} : [ `On | `Off | `Auto ] -> unit = "ml_set_mode_{i}"',
        f"""
value ml_set_mode_{i}(value mode)
{{
    return Val_unit;
}}
""",
        false_positives=1,
    )


def disguised_arith(i: int) -> GlueUnit:
    """Pointer arithmetic written as integer arithmetic on a custom value."""
    return _unit(
        f"""
type handle_{i}
external next_{i} : handle_{i} -> handle_{i} = "ml_next_{i}"
""",
        f"""
struct hdl_{i};
value ml_next_{i}(value v)
{{
    struct hdl_{i} *h = (struct hdl_{i} *)v;
    return (value)((struct hdl_{i} *)(v + sizeof(struct hdl_{i} *)));
}}
""",
        false_positives=1,
    )


def unknown_offset(i: int) -> GlueUnit:
    """Field access at a statically unknown index."""
    return _unit(
        f'external nth_{i} : int * int -> int = "ml_nth_{i}"',
        f"""
value ml_nth_{i}(value p)
{{
    int idx = runtime_index_{i}();
    return Field(p, idx);
}}
""",
        imprecision=1,
    )


def global_value(i: int) -> GlueUnit:
    """A global of type value (should be a registered global root)."""
    return _unit(
        "",
        f"""
value cached_state_{i};
""",
        imprecision=1,
    )


def function_pointer(i: int) -> GlueUnit:
    """A call through a function pointer generates no constraints."""
    return _unit(
        "",
        f"""
typedef int (*callback_{i}_t)(int);
int apply_{i}(callback_{i}_t f, int x)
{{
    int r = f(x);
    return r;
}}
""",
        imprecision=1,
    )


def address_taken(i: int) -> GlueUnit:
    """The address of a value variable escapes; tracking stops."""
    return _unit(
        f'external root_{i} : string -> unit = "ml_root_{i}"',
        f"""
value ml_root_{i}(value v)
{{
    caml_register_global_root(&v);
    return Val_unit;
}}
""",
        imprecision=1,
    )


DEFECT_TEMPLATES: Dict[str, Callable[[int], GlueUnit]] = {
    "unprotected_value": unprotected_value,
    "register_leak": register_leak,
    "val_int_swap": val_int_swap,
    "int_val_swap": int_val_swap,
    "option_misuse": option_misuse,
    "missing_conversion": missing_conversion,
    "trailing_unit": trailing_unit,
    "poly_abuse": poly_abuse,
    "poly_variant": poly_variant,
    "disguised_arith": disguised_arith,
    "unknown_offset": unknown_offset,
    "global_value": global_value,
    "function_pointer": function_pointer,
    "address_taken": address_taken,
}


# ---------------------------------------------------------------------------
# Filler templates — correct FFI idioms, must analyze clean
# ---------------------------------------------------------------------------


def filler_int_binop(i: int) -> GlueUnit:
    return _unit(
        f'external add_{i} : int -> int -> int = "ml_add_{i}"',
        f"""
value ml_add_{i}(value a, value b)
{{
    return Val_int(Int_val(a) + Int_val(b));
}}
""",
    )


def filler_enum_dispatch(i: int) -> GlueUnit:
    return _unit(
        f"""
type color_{i} = Red_{i} | Green_{i} | Blue_{i}
external code_{i} : color_{i} -> int = "ml_code_{i}"
""",
        f"""
value ml_code_{i}(value c)
{{
    int r = 0;
    switch (Int_val(c)) {{
    case 0: r = 10; break;
    case 1: r = 20; break;
    case 2: r = 30; break;
    }}
    return Val_int(r);
}}
""",
    )


def filler_variant_dispatch(i: int) -> GlueUnit:
    return _unit(
        f"""
type shape_{i} = Point_{i} | Circle_{i} of int | Rect_{i} of int * int
external area_{i} : shape_{i} -> int = "ml_area_{i}"
""",
        f"""
value ml_area_{i}(value s)
{{
    int r = 0;
    if (Is_long(s)) {{
        r = 0;
    }} else {{
        switch (Tag_val(s)) {{
        case 0: r = 3 * Int_val(Field(s, 0)); break;
        case 1: r = Int_val(Field(s, 0)) * Int_val(Field(s, 1)); break;
        }}
    }}
    return Val_int(r);
}}
""",
    )


def filler_tuple_get(i: int) -> GlueUnit:
    return _unit(
        f'external snd_{i} : int * int -> int = "ml_snd_{i}"',
        f"""
value ml_snd_{i}(value p)
{{
    return Field(p, 1);
}}
""",
    )


def filler_record_get(i: int) -> GlueUnit:
    return _unit(
        f"""
type point_{i} = {{ px_{i} : int; py_{i} : int }}
external getx_{i} : point_{i} -> int = "ml_getx_{i}"
""",
        f"""
value ml_getx_{i}(value p)
{{
    return Field(p, 0);
}}
""",
    )


def filler_ref_update(i: int) -> GlueUnit:
    return _unit(
        f'external bump_{i} : int ref -> unit = "ml_bump_{i}"',
        f"""
value ml_bump_{i}(value r)
{{
    int v = Int_val(Field(r, 0));
    Store_field(r, 0, Val_int(v + 1));
    return Val_unit;
}}
""",
    )


def filler_option_get(i: int) -> GlueUnit:
    return _unit(
        f'external value_of_{i} : int option -> int = "ml_value_of_{i}"',
        f"""
value ml_value_of_{i}(value o)
{{
    if (Is_long(o)) return Val_int(-1);
    return Field(o, 0);
}}
""",
    )


def filler_string_length(i: int) -> GlueUnit:
    return _unit(
        f'external size_{i} : string -> int = "ml_size_{i}"',
        f"""
value ml_size_{i}(value s)
{{
    CAMLparam1(s);
    int n = caml_string_length(s);
    CAMLreturn(Val_int(n));
}}
""",
    )


def filler_protected_alloc(i: int) -> GlueUnit:
    return _unit(
        f'external dup_{i} : string -> string * string = "ml_dup_{i}"',
        f"""
value ml_dup_{i}(value s)
{{
    CAMLparam1(s);
    CAMLlocal1(r);
    r = caml_alloc(2, 0);
    Store_field(r, 0, s);
    Store_field(r, 1, s);
    CAMLreturn(r);
}}
""",
    )


def filler_custom_handle(i: int) -> GlueUnit:
    return _unit(
        f"""
type conn_{i}
external open_{i} : int -> conn_{i} = "ml_open_{i}"
external close_{i} : conn_{i} -> unit = "ml_close_{i}"
""",
        f"""
struct conn_{i};
struct conn_{i} *sys_open_{i}(int port);
void sys_close_{i}(struct conn_{i} *c);
value ml_open_{i}(value port)
{{
    struct conn_{i} *c = sys_open_{i}(Int_val(port));
    return (value)c;
}}
value ml_close_{i}(value v)
{{
    sys_close_{i}((struct conn_{i} *)v);
    return Val_unit;
}}
""",
    )


def filler_list_head(i: int) -> GlueUnit:
    return _unit(
        f'external head_{i} : int list -> int = "ml_head_{i}"',
        f"""
value ml_head_{i}(value l)
{{
    if (Is_block(l)) return Field(l, 0);
    return Val_int(0);
}}
""",
    )


def filler_copy_string(i: int) -> GlueUnit:
    return _unit(
        f'external greet_{i} : unit -> string = "ml_greet_{i}"',
        f"""
value ml_greet_{i}(value u)
{{
    value s = caml_copy_string("hello");
    return s;
}}
""",
    )


def filler_bool_not(i: int) -> GlueUnit:
    return _unit(
        f'external negate_{i} : bool -> bool = "ml_negate_{i}"',
        f"""
value ml_negate_{i}(value b)
{{
    if (Int_val(b) == 0) return Val_true;
    return Val_false;
}}
""",
    )


def filler_int_loop(i: int) -> GlueUnit:
    return _unit(
        f'external triangle_{i} : int -> int = "ml_triangle_{i}"',
        f"""
value ml_triangle_{i}(value n)
{{
    int total = 0;
    int k;
    for (k = 0; k <= Int_val(n); k++) {{
        total += k;
    }}
    return Val_int(total);
}}
""",
    )


def filler_library_call(i: int) -> GlueUnit:
    return _unit(
        f'external query_{i} : int -> int = "ml_query_{i}"',
        f"""
value ml_query_{i}(value req)
{{
    int status = lib_request_{i}(Int_val(req), 0);
    if (status < 0) {{
        status = 0;
    }}
    return Val_int(status);
}}
""",
    )


def filler_float_add(i: int) -> GlueUnit:
    return _unit(
        f'external fadd_{i} : float -> float = "ml_fadd_{i}"',
        f"""
value ml_fadd_{i}(value x)
{{
    CAMLparam1(x);
    CAMLlocal1(r);
    double d = Double_val(x);
    r = caml_copy_double(d + 1);
    CAMLreturn(r);
}}
""",
    )


def filler_array_head(i: int) -> GlueUnit:
    return _unit(
        f'external first2_{i} : int array -> int = "ml_first2_{i}"',
        f"""
value ml_first2_{i}(value a)
{{
    int x = Int_val(Field(a, 0));
    int y = Int_val(Field(a, 1));
    return Val_int(x + y);
}}
""",
    )


def filler_callback(i: int) -> GlueUnit:
    return _unit(
        f"external invoke_{i} : (int -> int) -> int -> int = \"ml_invoke_{i}\"",
        f"""
value ml_invoke_{i}(value cb, value n)
{{
    CAMLparam2(cb, n);
    CAMLlocal1(r);
    r = caml_callback(cb, n);
    CAMLreturn(r);
}}
""",
    )


def filler_nested_sum(i: int) -> GlueUnit:
    return _unit(
        f"""
type item_{i} = Missing_{i} | Present_{i} of int option
external amount_{i} : item_{i} -> int = "ml_amount_{i}"
""",
        f"""
value ml_amount_{i}(value it)
{{
    if (Is_long(it)) return Val_int(-1);
    if (Tag_val(it) == 0) {{
        value opt = Field(it, 0);
        if (Is_block(opt)) return Field(opt, 0);
        return Val_int(0);
    }}
    return Val_int(-2);
}}
""",
    )


def filler_error_goto(i: int) -> GlueUnit:
    return _unit(
        f'external attempt_{i} : int -> int = "ml_attempt_{i}"',
        f"""
value ml_attempt_{i}(value n)
{{
    int rc;
    int h = open_handle_{i}(Int_val(n));
    if (h < 0) goto fail;
    rc = use_handle_{i}(h);
    if (rc < 0) goto fail;
    close_handle_{i}(h);
    return Val_int(rc);
fail:
    return Val_int(-1);
}}
""",
    )


def filler_exception_path(i: int) -> GlueUnit:
    return _unit(
        f'external must_{i} : int -> int = "ml_must_{i}"',
        f"""
value ml_must_{i}(value n)
{{
    int k = Int_val(n);
    if (k < 0) caml_invalid_argument("must_{i}: negative");
    return Val_int(k);
}}
""",
    )


FILLER_TEMPLATES: tuple[Callable[[int], GlueUnit], ...] = (
    filler_int_binop,
    filler_enum_dispatch,
    filler_variant_dispatch,
    filler_tuple_get,
    filler_record_get,
    filler_ref_update,
    filler_option_get,
    filler_string_length,
    filler_protected_alloc,
    filler_custom_handle,
    filler_list_head,
    filler_copy_string,
    filler_bool_not,
    filler_int_loop,
    filler_library_call,
    filler_float_add,
    filler_array_head,
    filler_callback,
    filler_nested_sum,
    filler_error_goto,
    filler_exception_path,
)
