"""Benchmark harness: run the checker over the synthesized suite.

Produces the data behind paper Figure 9: per program, the lines of C and
OCaml analyzed, the analysis wall-clock time, and the four report columns.
Measured counts are compared both against the synthesized ground truth
(exact) and the paper's row (shape).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from ..api import analyze_project
from ..core.checker import AnalysisReport
from ..core.exprs import Options
from .specs import SUITE, BenchmarkSpec, suite_totals
from .synth import SynthesizedBenchmark, synthesize


@dataclass
class BenchmarkResult:
    """One Figure 9 row, measured."""

    spec: BenchmarkSpec
    benchmark: SynthesizedBenchmark
    report: AnalysisReport
    elapsed_seconds: float

    @property
    def tally(self) -> dict[str, int]:
        return self.report.tally()

    @property
    def matches_ground_truth(self) -> bool:
        return self.tally == self.benchmark.expected_tally()

    @property
    def matches_paper(self) -> bool:
        return self.tally == self.spec.expected

    def row(self) -> dict[str, object]:
        tally = self.tally
        return {
            "program": self.spec.name,
            "c_loc": self.benchmark.c_loc,
            "ocaml_loc": self.benchmark.ocaml_loc,
            "time_s": round(self.elapsed_seconds, 2),
            "errors": tally["errors"],
            "warnings": tally["warnings"],
            "false_positives": tally["false_positives"],
            "imprecision": tally["imprecision"],
        }


def run_benchmark(
    spec: BenchmarkSpec,
    options: Optional[Options] = None,
    unique_prefix: int = 0,
) -> BenchmarkResult:
    """Synthesize and analyze one benchmark."""
    benchmark = synthesize(spec, unique_prefix)
    started = time.perf_counter()
    report = analyze_project(
        [benchmark.ocaml_source], [benchmark.c_source], options
    )
    elapsed = time.perf_counter() - started
    return BenchmarkResult(
        spec=spec, benchmark=benchmark, report=report, elapsed_seconds=elapsed
    )


@dataclass
class SuiteResult:
    """The whole Figure 9 table, measured."""

    results: List[BenchmarkResult] = field(default_factory=list)

    def totals(self) -> dict[str, int]:
        totals = {
            "errors": 0,
            "warnings": 0,
            "false_positives": 0,
            "imprecision": 0,
        }
        for result in self.results:
            for key in totals:
                totals[key] += result.tally[key]
        return totals

    @property
    def all_match_ground_truth(self) -> bool:
        return all(r.matches_ground_truth for r in self.results)

    @property
    def matches_paper_totals(self) -> bool:
        return self.totals() == suite_totals()


def run_suite(options: Optional[Options] = None) -> SuiteResult:
    """Run every Figure 9 row."""
    suite = SuiteResult()
    for prefix, spec in enumerate(SUITE):
        suite.results.append(run_benchmark(spec, options, unique_prefix=prefix))
    return suite
