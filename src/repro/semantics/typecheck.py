"""Checking-mode typing of runtime values and store compatibility.

This mirrors the appendix of the paper: Figure 13 types syntactic values
(``Int Exp``, ``Loc Exp``, ``ML Int Exp``, ``ML Loc Exp``) and Definition 4
(*Compatibility*) relates a type environment to the three stores.  The
soundness property test uses these to establish the premises of Theorem 1
before running the machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..core.lattice import (
    BOXED,
    FLAT_TOP,
    Qualifier,
    TOP_B,
    UNBOXED,
    is_const,
)
from ..core.types import (
    C_INT,
    CPtr,
    CType,
    CValue,
    EMPTY_SIGMA,
    MTCustom,
    MTRepr,
    PSI_TOP,
    PsiConst,
)
from ..core.unify import Unifier
from .stores import MachineState
from .values import CIntVal, CLoc, MLInt, MLLoc, Value


@dataclass
class HeapTyping:
    """Γ restricted to locations: block and C-cell type assignments.

    ``blocks[base]`` is the representational type of the block at ``base``;
    ``c_cells[address]`` is the pointee ct of the C location.
    """

    blocks: Dict[int, MTRepr] = field(default_factory=dict)
    c_cells: Dict[int, CType] = field(default_factory=dict)


class ValueTypeError(Exception):
    """A value does not inhabit the claimed type (Figure 13 rejection)."""


def check_value(
    unifier: Unifier,
    heap: HeapTyping,
    value: Value,
    ct: CType,
    qual: Qualifier,
) -> None:
    """Check ``Γ ⊢ v : ct[B{I}]{T}`` per Figure 13's value rules."""
    ct = unifier.resolve_ct(ct) if hasattr(unifier, "resolve_ct") else ct
    if isinstance(value, CIntVal):
        # (Int Exp): int type, any B? — the figure gives int[⊤{I}]{T} with
        # 0 ⊑ I and n ⊑ T.
        if not isinstance(ct, type(C_INT)):
            raise ValueTypeError(f"C integer {value} claimed at `{ct}`")
        if is_const(qual.tag) and qual.tag != value.value:
            raise ValueTypeError(
                f"integer {value.value} claimed tag {qual.tag}"
            )
        return
    if isinstance(value, CLoc):
        # (Loc Exp)
        if not isinstance(ct, CPtr):
            raise ValueTypeError(f"C location {value} claimed at `{ct}`")
        if value.address not in heap.c_cells:
            raise ValueTypeError(f"unknown C location {value}")
        return
    if isinstance(value, MLInt):
        # (ML Int Exp): n+1 ≤ Ψ, unboxed ⊑ B, n ⊑ T
        repr_type = _claimed_repr(unifier, ct)
        psi = unifier.resolve_psi(repr_type.psi)
        if isinstance(psi, PsiConst):
            if not 0 <= value.value < psi.count:
                raise ValueTypeError(
                    f"unboxed {value} exceeds {psi.count} nullary constructors"
                )
        if qual.boxedness is BOXED:
            raise ValueTypeError(f"unboxed {value} claimed boxed")
        if is_const(qual.tag) and qual.tag != value.value:
            raise ValueTypeError(f"{value} claimed tag {qual.tag}")
        return
    if isinstance(value, MLLoc):
        # (ML Loc Exp): boxed ⊑ B, n ⊑ I, tag ⊑ T, structural bounds
        repr_type = heap.blocks.get(value.base)
        if repr_type is None:
            raise ValueTypeError(f"unknown OCaml block at {value}")
        if qual.boxedness is UNBOXED:
            raise ValueTypeError(f"boxed {value} claimed unboxed")
        if is_const(qual.offset) and qual.offset != value.offset:
            raise ValueTypeError(
                f"{value} claimed offset {qual.offset}"
            )
        sigma = unifier.resolve_sigma(repr_type.sigma)
        return


def _claimed_repr(unifier: Unifier, ct: CType) -> MTRepr:
    if not isinstance(ct, CValue):
        raise ValueTypeError(f"OCaml value claimed at C type `{ct}`")
    mt = unifier.resolve_mt(ct.mt)
    if isinstance(mt, MTRepr):
        return mt
    if isinstance(mt, MTCustom):
        raise ValueTypeError("OCaml integer claimed at a custom type")
    # an unconstrained variable admits everything
    return MTRepr(psi=PSI_TOP, sigma=EMPTY_SIGMA)


def check_compatibility(
    unifier: Unifier,
    heap: HeapTyping,
    state: MachineState,
    var_types: Dict[str, tuple[CType, Qualifier]],
) -> List[str]:
    """Definition 4: Γ ∼ ⟨SC, SML, V⟩.  Returns human-readable violations.

    1. every store location / variable has a typing;
    2. C cells hold values of their pointee type;
    3. OCaml blocks: the stored tag matches, each field inhabits the
       corresponding element type, and the claimed product is long enough;
    4. every variable's value inhabits its claimed type.
    """
    problems: List[str] = []

    # (2) C store
    for address, stored in state.c_store.cells.items():
        pointee = heap.c_cells.get(address)
        if pointee is None:
            problems.append(f"C location l{address} has no typing")
            continue
        try:
            check_value(
                unifier, heap, stored, pointee, Qualifier(TOP_B, 0, FLAT_TOP)
            )
        except ValueTypeError as err:
            problems.append(f"C cell l{address}: {err}")

    # (3) OCaml store
    for base, size in state.ml_store.sizes.items():
        repr_type = heap.blocks.get(base)
        if repr_type is None:
            problems.append(f"block l{base} has no typing")
            continue
        tag = state.ml_store.tag_of(MLLoc(base, 0))
        sigma = unifier.resolve_sigma(repr_type.sigma)
        if tag >= len(sigma.prods) and sigma.is_closed:
            problems.append(
                f"block l{base} has tag {tag} but type has only "
                f"{len(sigma.prods)} non-nullary constructors"
            )
            continue
        if tag < len(sigma.prods):
            product = unifier.resolve_pi(sigma.prods[tag])
            if product.is_closed and size > len(product.elems):
                problems.append(
                    f"block l{base} has {size} fields but product only "
                    f"{len(product.elems)}"
                )
            for offset in range(size):
                if offset >= len(product.elems):
                    break
                stored = state.ml_store.read(MLLoc(base, offset))
                elem_mt = unifier.resolve_mt(product.elems[offset])
                try:
                    check_value(
                        unifier,
                        heap,
                        stored,
                        CValue(elem_mt),
                        Qualifier(TOP_B, 0, FLAT_TOP),
                    )
                except ValueTypeError as err:
                    problems.append(f"block l{base} field {offset}: {err}")

    # (4) variables
    for name, value in state.variables.bindings.items():
        typing = var_types.get(name)
        if typing is None:
            problems.append(f"variable `{name}` has no typing")
            continue
        ct, qual = typing
        try:
            check_value(unifier, heap, value, ct, qual)
        except ValueTypeError as err:
            problems.append(f"variable `{name}`: {err}")

    return problems
