"""Random generator of restricted-language programs for the Theorem 1 test.

Generates a random OCaml variant type, a random inhabitant of it laid out
in the OCaml store, and a Figure 2-style dispatch program over it — along
with the matching ``external`` declaration and the generated program as C
source text so the *whole* pipeline (parse → lower → infer) can be
exercised before the machine runs.

The generator can optionally *sabotage* the program with one of the defect
classes of §5.2; the soundness property then reads: whenever the inference
system accepts a (possibly sabotaged) program, the machine does not get
stuck on any generated inhabitant.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from .stores import MachineState
from .values import MLInt, Value


@dataclass(frozen=True)
class GenConstructor:
    name: str
    arity: int  # 0 for nullary


@dataclass(frozen=True)
class GenVariant:
    """A generated OCaml variant type with int-only payloads."""

    name: str
    constructors: tuple[GenConstructor, ...]

    @property
    def nullary(self) -> list[GenConstructor]:
        return [c for c in self.constructors if c.arity == 0]

    @property
    def non_nullary(self) -> list[GenConstructor]:
        return [c for c in self.constructors if c.arity > 0]

    def ocaml_decl(self) -> str:
        parts = []
        for ctor in self.constructors:
            if ctor.arity == 0:
                parts.append(ctor.name)
            else:
                parts.append(
                    f"{ctor.name} of " + " * ".join(["int"] * ctor.arity)
                )
        return f"type {self.name} = " + " | ".join(parts)


_NAMES = ["Alpha", "Bravo", "Carol", "Delta", "Echo", "Fox", "Golf", "Hotel"]


def random_variant(rng: random.Random) -> GenVariant:
    """A variant with 1-4 nullary and 0-3 non-nullary constructors."""
    n_nullary = rng.randint(1, 4)
    n_boxed = rng.randint(0, 3)
    names = rng.sample(_NAMES, n_nullary + n_boxed)
    ctors: list[GenConstructor] = []
    for index in range(n_nullary):
        ctors.append(GenConstructor(names[index], 0))
    for index in range(n_boxed):
        ctors.append(
            GenConstructor(names[n_nullary + index], rng.randint(1, 3))
        )
    return GenVariant(name="t", constructors=tuple(ctors))


def random_inhabitant(
    rng: random.Random, variant: GenVariant, state: MachineState
) -> Value:
    """Build a runtime value of the variant, allocating blocks as needed."""
    pick = rng.randrange(len(variant.constructors))
    ctor = variant.constructors[pick]
    if ctor.arity == 0:
        number = variant.nullary.index(ctor)
        return MLInt(number)
    tag = variant.non_nullary.index(ctor)
    fields = [MLInt(rng.randint(-5, 5)) for _ in range(ctor.arity)]
    return state.ml_store.alloc_block(tag, fields)


@dataclass
class GeneratedProgram:
    """Everything the property test needs for one sample."""

    variant: GenVariant
    ocaml_source: str
    c_source: str
    #: name of the C function to execute
    entry: str = "ml_dispatch"
    #: defect injected (None for intended-correct programs)
    sabotage: Optional[str] = None


SABOTAGES = (
    "field_without_test",  # Field on possibly-unboxed data
    "tag_too_big",  # Tag_val case beyond the constructors
    "int_tag_too_big",  # Int_val case beyond the nullary count
    "val_int_on_value",  # Val_int applied to the value itself
    "field_out_of_range",  # Field index past the payload
)


def generate_program(
    rng: random.Random, sabotage: Optional[str] = None
) -> GeneratedProgram:
    """A dispatch function over a random variant, optionally sabotaged."""
    variant = random_variant(rng)
    ocaml = (
        variant.ocaml_decl()
        + f'\nexternal dispatch : {variant.name} -> int = "ml_dispatch"'
    )

    lines: List[str] = ["value ml_dispatch(value x)", "{", "    int acc = 0;"]

    if sabotage == "val_int_on_value":
        lines.append("    return Val_int(x);")
    elif sabotage == "field_without_test":
        lines.append("    acc = Int_val(Field(x, 0));")
        lines.append("    return Val_int(acc);")
    else:
        lines.append("    if (Is_long(x)) {")
        lines.append("        switch (Int_val(x)) {")
        nullary_cases = len(variant.nullary)
        if sabotage == "int_tag_too_big":
            nullary_cases += 2
        for number in range(nullary_cases):
            lines.append(f"        case {number}: acc = {number + 1}; break;")
        lines.append("        }")
        lines.append("    } else {")
        lines.append("        switch (Tag_val(x)) {")
        boxed = list(variant.non_nullary)
        cases = len(boxed)
        if sabotage == "tag_too_big":
            cases += 2
        for tag in range(cases):
            ctor = boxed[tag] if tag < len(boxed) else None
            if ctor is None:
                lines.append(f"        case {tag}: acc = 99; break;")
                continue
            index = ctor.arity - 1
            if sabotage == "field_out_of_range" and tag == 0:
                index = ctor.arity + 3
            lines.append(
                f"        case {tag}: acc = Int_val(Field(x, {index})); break;"
            )
        lines.append("        }")
        lines.append("    }")
        lines.append("    return Val_int(acc);")
    lines.append("}")

    return GeneratedProgram(
        variant=variant,
        ocaml_source=ocaml,
        c_source="\n".join(lines),
        sabotage=sabotage,
    )


def generate_sample(
    rng: random.Random, allow_sabotage: bool = True
) -> GeneratedProgram:
    sabotage: Optional[str] = None
    if allow_sabotage and rng.random() < 0.4:
        sabotage = rng.choice(SABOTAGES)
    return generate_program(rng, sabotage)
