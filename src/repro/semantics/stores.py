"""The three stores of the operational semantics (paper §4 / Appendix A).

* ``SC`` maps C locations ``l`` to values,
* ``SML`` maps OCaml locations ``{l + n}`` to values, with the convention
  that ``{l + -1}`` holds the block's runtime tag,
* ``V`` maps local variables to values.

Blocks in ``SML`` are allocated whole: a tag plus ``size`` fields, matching
the structured-block layout of §2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable

from .values import CIntVal, CLoc, MLLoc, Value


class StoreError(Exception):
    """An access the stores cannot satisfy (the machine is stuck)."""


@dataclass
class CStore:
    """``SC`` — the flat C heap."""

    cells: Dict[int, Value] = field(default_factory=dict)
    _next: int = 0

    def alloc(self, value: Value) -> CLoc:
        address = self._next
        self._next += 1
        self.cells[address] = value
        return CLoc(address)

    def read(self, loc: CLoc) -> Value:
        if loc.address not in self.cells:
            raise StoreError(f"read from unallocated C location {loc}")
        return self.cells[loc.address]

    def write(self, loc: CLoc, value: Value) -> None:
        if loc.address not in self.cells:
            raise StoreError(f"write to unallocated C location {loc}")
        self.cells[loc.address] = value

    def __contains__(self, loc: CLoc) -> bool:
        return loc.address in self.cells


@dataclass
class MLStore:
    """``SML`` — the OCaml heap of tagged structured blocks."""

    #: (base, offset) -> value; offset -1 holds the tag
    cells: Dict[tuple[int, int], Value] = field(default_factory=dict)
    sizes: Dict[int, int] = field(default_factory=dict)
    _next: int = 0

    def alloc_block(self, tag: int, fields: Iterable[Value]) -> MLLoc:
        """Allocate a structured block with the given tag and fields."""
        base = self._next
        self._next += 1
        values = list(fields)
        self.cells[(base, -1)] = CIntVal(tag)
        for index, value in enumerate(values):
            self.cells[(base, index)] = value
        self.sizes[base] = len(values)
        return MLLoc(base, 0)

    def tag_of(self, loc: MLLoc) -> int:
        cell = self.cells.get((loc.base, -1))
        if cell is None:
            raise StoreError(f"tag read from unallocated block {loc}")
        assert isinstance(cell, CIntVal)
        return cell.value

    def read(self, loc: MLLoc) -> Value:
        if (loc.base, loc.offset) not in self.cells:
            raise StoreError(f"read from unallocated OCaml cell {loc}")
        return self.cells[(loc.base, loc.offset)]

    def write(self, loc: MLLoc, value: Value) -> None:
        if (loc.base, loc.offset) not in self.cells:
            raise StoreError(f"write to unallocated OCaml cell {loc}")
        self.cells[(loc.base, loc.offset)] = value

    def size_of(self, base: int) -> int:
        if base not in self.sizes:
            raise StoreError(f"size of unallocated block l{base}")
        return self.sizes[base]

    def __contains__(self, loc: MLLoc) -> bool:
        return (loc.base, loc.offset) in self.cells


@dataclass
class VarStore:
    """``V`` — the local variables."""

    bindings: Dict[str, Value] = field(default_factory=dict)

    def read(self, name: str) -> Value:
        if name not in self.bindings:
            raise StoreError(f"read of unbound variable `{name}`")
        return self.bindings[name]

    def write(self, name: str, value: Value) -> None:
        self.bindings[name] = value

    def __contains__(self, name: str) -> bool:
        return name in self.bindings


@dataclass
class MachineState:
    """The full configuration ⟨SC, SML, V, s⟩ minus the statement cursor."""

    c_store: CStore = field(default_factory=CStore)
    ml_store: MLStore = field(default_factory=MLStore)
    variables: VarStore = field(default_factory=VarStore)
