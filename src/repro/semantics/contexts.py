"""Reduction contexts (paper Figure 11) and context-based reduction.

The paper specifies evaluation order with contexts::

    R ::= [] | *R | R aop e | v aop R | R +p e | v +p R
        | Val_int R | Int_val R | R ; s | if R then L | R := e | v := R

This module implements the expression fragment literally: `decompose`
splits an expression into a context (the path to the innermost reducible
position) and a *redex* whose sub-expressions are all values; `plug` puts a
result back.  `context_eval` iterates decompose → contract → plug, one
reduction per step, and is provably (and in the test suite, empirically)
equivalent to the big-step evaluator in :mod:`repro.semantics.reduce` —
the small-step/abstract-machine correspondence that the appendix's subject
reduction lemma for expressions relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Union

from ..cfront.ir import (
    AOp,
    Deref,
    Expr,
    IntLit,
    IntValExp,
    PtrAdd,
    ValIntExp,
    VarExp,
)
from .reduce import _AOPS, StuckError
from .stores import MachineState
from .values import CIntVal, CLoc, MLInt, MLLoc, Value

#: An expression whose evaluation is finished is represented by a literal
#: carrier: C ints map back to IntLit; other values need a wrapper.


@dataclass(frozen=True)
class ValueExp:
    """A computed runtime value embedded back into expression syntax.

    The paper's grammar adds values ``v`` to expressions for exactly this
    purpose (Figure 10: ``e ::= v | x | ...``).
    """

    value: Value

    def __str__(self) -> str:
        return str(self.value)


CExpr = Union[Expr, ValueExp]

#: A context is represented as a function that plugs a hole — composing
#: closures keeps the datatype honest (each frame is one Figure 11 form).
Context = Callable[[CExpr], CExpr]


def _hole(exp: CExpr) -> CExpr:
    return exp


def is_value_exp(exp: CExpr) -> bool:
    return isinstance(exp, ValueExp) or isinstance(exp, IntLit)


def as_value(exp: CExpr) -> Value:
    if isinstance(exp, IntLit):
        return CIntVal(exp.value)
    assert isinstance(exp, ValueExp)
    return exp.value


def decompose(exp: CExpr) -> Optional[Tuple[Context, CExpr]]:
    """Split into ``(R, redex)`` — None when ``exp`` is already a value.

    The redex is the leftmost-innermost reducible sub-expression; every
    frame follows a Figure 11 production.
    """
    if is_value_exp(exp):
        return None
    if isinstance(exp, VarExp):
        return _hole, exp
    if isinstance(exp, Deref):
        inner = decompose(exp.exp)
        if inner is None:
            return _hole, exp
        context, redex = inner
        return (lambda e: Deref(context(e), exp.span)), redex  # *R
    if isinstance(exp, AOp):
        left = decompose(exp.left)
        if left is not None:
            context, redex = left
            return (
                lambda e: AOp(exp.op, context(e), exp.right, exp.span)
            ), redex  # R aop e
        right = decompose(exp.right)
        if right is not None:
            context, redex = right
            return (
                lambda e: AOp(exp.op, exp.left, context(e), exp.span)
            ), redex  # v aop R
        return _hole, exp
    if isinstance(exp, PtrAdd):
        base = decompose(exp.base)
        if base is not None:
            context, redex = base
            return (
                lambda e: PtrAdd(context(e), exp.offset, exp.span)
            ), redex  # R +p e
        offset = decompose(exp.offset)
        if offset is not None:
            context, redex = offset
            return (
                lambda e: PtrAdd(exp.base, context(e), exp.span)
            ), redex  # v +p R
        return _hole, exp
    if isinstance(exp, ValIntExp):
        inner = decompose(exp.exp)
        if inner is not None:
            context, redex = inner
            return (lambda e: ValIntExp(context(e), exp.span)), redex
        return _hole, exp
    if isinstance(exp, IntValExp):
        inner = decompose(exp.exp)
        if inner is not None:
            context, redex = inner
            return (lambda e: IntValExp(context(e), exp.span)), redex
        return _hole, exp
    raise StuckError(f"expression outside the restricted grammar: {exp}")


def contract(state: MachineState, redex: CExpr) -> CExpr:
    """One reduction of a redex whose sub-expressions are all values."""
    from .stores import StoreError

    if isinstance(redex, VarExp):
        try:
            return ValueExp(state.variables.read(redex.name))  # (o-var)
        except StoreError as err:
            raise StuckError(str(err)) from err
    if isinstance(redex, Deref):
        target = as_value(redex.exp)
        try:
            if isinstance(target, CLoc):
                return ValueExp(state.c_store.read(target))  # (o-c-deref)
            if isinstance(target, MLLoc):
                return ValueExp(state.ml_store.read(target))  # (o-ml-deref)
        except StoreError as err:
            raise StuckError(str(err)) from err
        raise StuckError(f"dereference of non-location {target}")
    if isinstance(redex, AOp):
        left = as_value(redex.left)
        right = as_value(redex.right)
        if not (isinstance(left, CIntVal) and isinstance(right, CIntVal)):
            raise StuckError(f"arithmetic on {left}, {right}")
        op = _AOPS.get(redex.op)
        if op is None:
            raise StuckError(f"unknown operator {redex.op}")
        return ValueExp(CIntVal(op(left.value, right.value)))  # (o-aop)
    if isinstance(redex, PtrAdd):
        base = as_value(redex.base)
        offset = as_value(redex.offset)
        if not isinstance(offset, CIntVal):
            raise StuckError(f"pointer offset {offset}")
        if isinstance(base, MLLoc):
            return ValueExp(base.shifted(offset.value))  # (o-ml-add)
        if isinstance(base, CLoc):
            if offset.value != 0:
                raise StuckError("non-zero C pointer arithmetic")
            return ValueExp(base)  # (o-c-add)
        raise StuckError(f"pointer arithmetic on {base}")
    if isinstance(redex, ValIntExp):
        inner = as_value(redex.exp)
        if not isinstance(inner, CIntVal):
            raise StuckError(f"Val_int of {inner}")
        return ValueExp(MLInt(inner.value))  # (o-valint)
    if isinstance(redex, IntValExp):
        inner = as_value(redex.exp)
        if not isinstance(inner, MLInt):
            raise StuckError(f"Int_val of {inner}")
        return ValueExp(CIntVal(inner.value))  # (o-intval)
    raise StuckError(f"not a redex: {redex}")


def _subexprs_are_values(exp: CExpr) -> bool:
    children = []
    if isinstance(exp, Deref):
        children = [exp.exp]
    elif isinstance(exp, AOp):
        children = [exp.left, exp.right]
    elif isinstance(exp, PtrAdd):
        children = [exp.base, exp.offset]
    elif isinstance(exp, (ValIntExp, IntValExp)):
        children = [exp.exp]
    return all(is_value_exp(c) for c in children)


def context_eval(
    state: MachineState, exp: Expr, max_steps: int = 10_000
) -> Tuple[Value, int]:
    """Evaluate by repeated decompose/contract/plug; returns (value, steps)."""
    current: CExpr = exp
    steps = 0
    while not is_value_exp(current):
        if steps >= max_steps:
            raise StuckError("expression evaluation did not terminate")
        split = decompose(current)
        if split is None:
            break
        context, redex = split
        if not (isinstance(redex, VarExp) or _subexprs_are_values(redex)):
            raise StuckError(f"decompose returned a non-redex: {redex}")
        current = context(contract(state, redex))
        steps += 1
    return as_value(current), steps
