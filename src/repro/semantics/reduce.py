"""Small-step operational semantics (paper Figure 12).

The machine executes the restricted statement language of Figure 10 — the
Figure 5 IR minus calls, casts and CAMLprotect/CAMLreturn — over the three
stores.  Any transition the rules do not license raises :class:`StuckError`;
Theorem 1 says well-typed programs never do.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..cfront.ir import (
    AOp,
    Deref,
    Expr,
    IntLit,
    IntValExp,
    MemLval,
    PtrAdd,
    SAssign,
    SGoto,
    SIf,
    SIfIntTag,
    SIfSumTag,
    SIfUnboxed,
    SNop,
    SReturn,
    Stmt,
    ValIntExp,
    VarExp,
)
from .stores import MachineState, StoreError
from .values import CIntVal, CLoc, MLInt, MLLoc, Value


class StuckError(Exception):
    """No reduction rule applies: the configuration is stuck."""


_AOPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a // b if b else 0,
    "%": lambda a, b: a % b if b else 0,
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "<": lambda a, b: int(a < b),
    ">": lambda a, b: int(a > b),
    "<=": lambda a, b: int(a <= b),
    ">=": lambda a, b: int(a >= b),
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << (b % 64),
    ">>": lambda a, b: a >> (b % 64),
    "&&": lambda a, b: int(bool(a) and bool(b)),
    "||": lambda a, b: int(bool(a) or bool(b)),
}


def eval_expr(state: MachineState, exp: Expr) -> Value:
    """Evaluate a side-effect-free expression (Figure 12a)."""
    if isinstance(exp, IntLit):
        return CIntVal(exp.value)
    if isinstance(exp, VarExp):
        # (o-var)
        try:
            return state.variables.read(exp.name)
        except StoreError as err:
            raise StuckError(str(err)) from err
    if isinstance(exp, Deref):
        target = eval_expr(state, exp.exp)
        try:
            if isinstance(target, CLoc):
                return state.c_store.read(target)  # (o-c-deref)
            if isinstance(target, MLLoc):
                return state.ml_store.read(target)  # (o-ml-deref)
        except StoreError as err:
            raise StuckError(str(err)) from err
        raise StuckError(f"dereference of non-location {target}")
    if isinstance(exp, PtrAdd):
        base = eval_expr(state, exp.base)
        offset = eval_expr(state, exp.offset)
        if not isinstance(offset, CIntVal):
            raise StuckError(f"pointer offset {offset} is not a C integer")
        if isinstance(base, MLLoc):
            return base.shifted(offset.value)  # (o-ml-add)
        if isinstance(base, CLoc):
            if offset.value != 0:
                # (o-c-add) licenses only trivial C pointer arithmetic
                raise StuckError("non-zero arithmetic on a C pointer")
            return base
        raise StuckError(f"pointer arithmetic on non-pointer {base}")
    if isinstance(exp, AOp):
        left = eval_expr(state, exp.left)
        right = eval_expr(state, exp.right)
        if not (isinstance(left, CIntVal) and isinstance(right, CIntVal)):
            raise StuckError(
                f"arithmetic on non-integers {left} {exp.op} {right}"
            )
        op = _AOPS.get(exp.op)
        if op is None:
            raise StuckError(f"unknown operator {exp.op}")
        return CIntVal(op(left.value, right.value))  # (o-aop)
    if isinstance(exp, ValIntExp):
        inner = eval_expr(state, exp.exp)
        if not isinstance(inner, CIntVal):
            raise StuckError(f"Val_int of non-integer {inner}")
        return MLInt(inner.value)  # (o-valint)
    if isinstance(exp, IntValExp):
        inner = eval_expr(state, exp.exp)
        if not isinstance(inner, MLInt):
            raise StuckError(f"Int_val of non-OCaml-integer {inner}")
        return CIntVal(inner.value)  # (o-intval)
    raise StuckError(f"expression form not in the restricted language: {exp}")


class Outcome(enum.Enum):
    """How a program run ended."""

    FINISHED = "finished"  # reduced to () — fell off the end or returned
    STUCK = "stuck"
    EXHAUSTED = "exhausted"  # step budget hit (diverging per Theorem 1)


@dataclass
class RunResult:
    outcome: Outcome
    steps: int
    reason: Optional[str] = None
    returned: Optional[Value] = None


class Machine:
    """Iterates the reduction relation over a statement list."""

    def __init__(self, body: list[Stmt], labels: dict[str, int], state: MachineState):
        self.body = body
        self.labels = labels
        self.state = state

    def _jump(self, label: str) -> int:
        if label not in self.labels:
            raise StuckError(f"goto to undefined label {label}")
        return self.labels[label]

    def step(self, index: int) -> tuple[int, Optional[Value]]:
        """One reduction; returns the next index (or len(body) to finish)."""
        stmt = self.body[index]
        state = self.state
        if isinstance(stmt, SNop):
            return index + 1, None
        if isinstance(stmt, SGoto):
            return self._jump(stmt.label), None  # (o-goto)
        if isinstance(stmt, SReturn):
            value = eval_expr(state, stmt.exp) if stmt.exp is not None else None
            return len(self.body), value
        if isinstance(stmt, SAssign):
            return self._step_assign(index, stmt), None
        if isinstance(stmt, SIf):
            cond = eval_expr(state, stmt.cond)
            if not isinstance(cond, CIntVal):
                raise StuckError(f"branch on non-integer {cond}")
            if cond.value != 0:
                return self._jump(stmt.label), None  # (o-if)
            return index + 1, None  # (o-if2)
        if isinstance(stmt, SIfUnboxed):
            value = state.variables.read(stmt.var)
            if isinstance(value, MLInt):
                return self._jump(stmt.label), None  # (o-iflong)
            if isinstance(value, MLLoc) and value.offset == 0:
                return index + 1, None  # (o-iflong2)
            raise StuckError(
                f"Is_long on {value} (not an OCaml value at offset 0)"
            )
        if isinstance(stmt, SIfSumTag):
            value = state.variables.read(stmt.var)
            if not (isinstance(value, MLLoc) and value.offset == 0):
                raise StuckError(f"Tag_val on {value} (not a block at offset 0)")
            tag = state.ml_store.tag_of(value)
            if tag == stmt.tag:
                return self._jump(stmt.label), None  # (o-ifsum)
            return index + 1, None  # (o-ifsum2)
        if isinstance(stmt, SIfIntTag):
            value = state.variables.read(stmt.var)
            if not isinstance(value, MLInt):
                raise StuckError(f"Int_val comparison on {value}")
            if value.value == stmt.tag:
                return self._jump(stmt.label), None  # (o-ifi)
            return index + 1, None  # (o-ifi2)
        raise StuckError(f"statement form not in the restricted language: {stmt}")

    def _step_assign(self, index: int, stmt: SAssign) -> int:
        state = self.state
        if not isinstance(stmt.rhs, (IntLit, VarExp, Deref, AOp, PtrAdd, ValIntExp, IntValExp)):
            raise StuckError(f"rhs form not in the restricted language: {stmt.rhs}")
        value = eval_expr(state, stmt.rhs)
        if isinstance(stmt.lval, VarExp):
            state.variables.write(stmt.lval.name, value)  # (o-var-assign)
            return index + 1
        if isinstance(stmt.lval, MemLval):
            base = eval_expr(state, stmt.lval.base)
            if isinstance(base, MLLoc):
                target = base.shifted(stmt.lval.offset)
                try:
                    state.ml_store.write(target, value)  # (o-ml-assign)
                except StoreError as err:
                    raise StuckError(str(err)) from err
                return index + 1
            if isinstance(base, CLoc):
                if stmt.lval.offset != 0:
                    raise StuckError("non-zero store offset on a C pointer")
                try:
                    state.c_store.write(base, value)  # (o-c-assign)
                except StoreError as err:
                    raise StuckError(str(err)) from err
                return index + 1
            raise StuckError(f"store through non-location {base}")
        raise StuckError("assignment without a target")

    def run(self, max_steps: int = 100_000) -> RunResult:
        index = 0
        steps = 0
        returned: Optional[Value] = None
        try:
            while index < len(self.body):
                if steps >= max_steps:
                    return RunResult(Outcome.EXHAUSTED, steps)
                index, value = self.step(index)
                if value is not None:
                    returned = value
                steps += 1
        except (StuckError, StoreError) as err:
            return RunResult(Outcome.STUCK, steps, reason=str(err))
        return RunResult(Outcome.FINISHED, steps, returned=returned)
