"""Syntactic values of the restricted language (paper Figure 10).

``v ::= n | l | {n} | {l + n}`` — C integers, C locations, OCaml integers
(unboxed values with the low bit conceptually set), and OCaml locations (a
pointer into the OCaml heap at base ``l`` and word offset ``n``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True)
class CIntVal:
    """A C integer ``n``."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class CLoc:
    """A C location ``l`` (an abstract address in the C store)."""

    address: int

    def __str__(self) -> str:
        return f"l{self.address}"


@dataclass(frozen=True)
class MLInt:
    """An OCaml unboxed value ``{n}`` — an int or a nullary constructor."""

    value: int

    def __str__(self) -> str:
        return f"{{{self.value}}}"


@dataclass(frozen=True)
class MLLoc:
    """An OCaml heap pointer ``{l + n}``: block base ``l``, offset ``n``."""

    base: int
    offset: int = 0

    def shifted(self, delta: int) -> "MLLoc":
        return MLLoc(self.base, self.offset + delta)

    def __str__(self) -> str:
        return f"{{l{self.base} + {self.offset}}}"


Value = Union[CIntVal, CLoc, MLInt, MLLoc]


def is_unboxed(value: Value) -> bool:
    """Is this an OCaml value that ``Is_long`` would report unboxed?"""
    return isinstance(value, MLInt)


def is_boxed(value: Value) -> bool:
    return isinstance(value, MLLoc)
