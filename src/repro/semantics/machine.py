"""Glue between the front end, the checker and the operational semantics.

:func:`run_generated` takes a :class:`~repro.semantics.generator.GeneratedProgram`,
pushes it through the real pipeline (OCaml phase, C phase, inference) and —
when the checker accepts — executes the lowered body on a random inhabitant
with the small-step machine.  This is the empirical form of Theorem 1.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..api import analyze_project
from ..cfront.ir import (
    CallExp,
    SAssign,
    SCamlReturn,
    SReturn,
    Stmt,
)
from ..cfront.lower import lower_unit
from ..cfront.parser import parse_c_text
from ..core.checker import AnalysisReport
from .generator import GeneratedProgram, random_inhabitant
from .reduce import Machine, Outcome, RunResult
from .stores import MachineState
from .values import Value


@dataclass
class SoundnessSample:
    """One (program, input) pair pushed end to end."""

    program: GeneratedProgram
    report: AnalysisReport
    accepted: bool
    run: Optional[RunResult] = None
    input_value: Optional[Value] = None


def _strip_for_machine(body: list[Stmt]) -> list[Stmt]:
    """Replace constructs outside the restricted language with no-ops.

    Generated dispatch programs contain no calls or casts, so this is a
    defensive identity in practice; CAMLreturn is mapped to return.
    """
    stripped: list[Stmt] = []
    for stmt in body:
        if isinstance(stmt, SCamlReturn):
            stripped.append(SReturn(stmt.exp, stmt.span))
        elif isinstance(stmt, SAssign) and isinstance(stmt.rhs, CallExp):
            raise ValueError("generated program unexpectedly contains a call")
        else:
            stripped.append(stmt)
    return stripped


def run_generated(
    program: GeneratedProgram, rng: random.Random, runs: int = 4
) -> SoundnessSample:
    """Analyze the program; if accepted, execute it on random inhabitants."""
    report = analyze_project([program.ocaml_source], [program.c_source])
    accepted = not report.errors
    sample = SoundnessSample(program=program, report=report, accepted=accepted)
    if not accepted:
        return sample

    unit = parse_c_text(program.c_source)
    lowered = lower_unit(unit).function(program.entry)
    body = _strip_for_machine(lowered.body)

    for _ in range(runs):
        state = MachineState()
        argument = random_inhabitant(rng, program.variant, state)
        state.variables.write("x", argument)
        # locals start as C zero; the restricted machine requires every
        # read variable to be bound
        for decl in lowered.local_decls:
            from .values import CIntVal

            state.variables.write(decl.name, CIntVal(0))
        machine = Machine(body, lowered.labels, state)
        result = machine.run()
        sample.run = result
        sample.input_value = argument
        if result.outcome is Outcome.STUCK:
            return sample
    return sample
