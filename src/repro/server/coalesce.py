"""Request coalescing for the analysis service.

Fleet traffic is massively redundant: hundreds of editor and CI clients
asking the same daemon to ``check`` the same tree produce identical
requests, and re-running (or even re-serializing) the answer per client
throws away almost all of the warm path's headroom.  The
:class:`CheckCoalescer` deduplicates that work at two levels:

* **in-flight sharing** — identical concurrent ``check`` requests (same
  params digest at the same engine revision) elect one *leader* that
  computes; every *follower* waits on the leader's future and receives
  the same pre-encoded result fragment.
* **revision memo** — once a check completes, its encoded result stays
  valid until the engine's revision changes (an ``invalidate``, a
  ``reload``, or a check that actually re-analyzed something bumps it).
  Repeat requests at the same revision are served straight from the
  memo: no engine lock, no re-serialization, just an id splice.

Entries are keyed on ``(params digest, engine revision)``, so a check
that races an invalidation can only ever observe *fresher* results than
its key implies, never staler: the revision is read before the lookup,
and publications always carry state at least as new as the revision
they are filed under.

The shared payload is the *encoded result fragment* (a stable-JSON
string), not a Python object — consumers splice their own request id
around it (:func:`repro.server.protocol.splice_result`), which keeps
fan-out O(bytes) and guarantees every client sees byte-identical
diagnostics.

Futures are :class:`concurrent.futures.Future`, so synchronous
transports block on ``result()`` while the asyncio daemon awaits them
via ``asyncio.wrap_future`` without occupying a worker thread.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import Future
from typing import Hashable, Optional, Union

#: completed results remembered per coalescer; one entry per distinct
#: params digest is typical, so this is ample for real traffic
DEFAULT_MEMO_ENTRIES = 64


class InflightEntry:
    """One computation in progress: its key and the future it resolves."""

    __slots__ = ("key", "future")

    def __init__(self, key: Hashable):
        self.key = key
        self.future: "Future[str]" = Future()


class CheckCoalescer:
    """Deduplicates identical ``check`` computations across clients.

    Thread-safe.  The protocol is two-step so transports can apply
    backpressure between them::

        probed = coalescer.probe(key)      # memo string or entry or None
        # ... None means a computation is needed: check queue capacity,
        # shed here if the daemon is saturated ...
        role, entry = coalescer.begin(key)  # "leader" computes, then
        coalescer.resolve(entry, fragment)  # publishes to all followers
    """

    def __init__(self, memo_entries: int = DEFAULT_MEMO_ENTRIES):
        self._lock = threading.Lock()
        self._inflight: dict[Hashable, InflightEntry] = {}
        self._memo: "OrderedDict[Hashable, str]" = OrderedDict()
        self._memo_entries = memo_entries
        #: check requests that received a (shared or fresh) result
        self.requests = 0
        #: requests that actually computed (coalescing leaders)
        self.computed = 0
        #: requests served by waiting on an in-flight leader
        self.coalesced_inflight = 0
        #: requests served straight from the revision memo
        self.coalesced_memo = 0

    # -- lookup ---------------------------------------------------------------

    def probe(self, key: Hashable) -> Optional[Union[str, InflightEntry]]:
        """Non-blocking lookup: a memoized fragment, an in-flight entry
        to wait on, or ``None`` when a new computation is needed.

        Only the first two count as served requests; a ``None`` caller
        is expected to come back through :meth:`begin` (or be shed)."""
        with self._lock:
            fragment = self._memo.get(key)
            if fragment is not None:
                self._memo.move_to_end(key)
                self.requests += 1
                self.coalesced_memo += 1
                return fragment
            entry = self._inflight.get(key)
            if entry is not None:
                self.requests += 1
                self.coalesced_inflight += 1
                return entry
            return None

    def begin(self, key: Hashable) -> tuple[str, InflightEntry]:
        """Join or start the computation for ``key``.

        Returns ``("leader", entry)`` for the caller that must compute
        and :meth:`resolve` the entry, or ``("follower", entry)`` when
        another caller won the race after this one's :meth:`probe`."""
        with self._lock:
            entry = self._inflight.get(key)
            if entry is not None:
                self.requests += 1
                self.coalesced_inflight += 1
                return "follower", entry
            entry = InflightEntry(key)
            self._inflight[key] = entry
            self.requests += 1
            self.computed += 1
            return "leader", entry

    # -- publication ----------------------------------------------------------

    def resolve(self, entry: InflightEntry, fragment: str) -> None:
        """Leader publishes: memoize the fragment and wake every follower."""
        with self._lock:
            self._inflight.pop(entry.key, None)
            self._memo[entry.key] = fragment
            self._memo.move_to_end(entry.key)
            while len(self._memo) > self._memo_entries:
                self._memo.popitem(last=False)
        entry.future.set_result(fragment)

    def fail(self, entry: InflightEntry, exc: BaseException) -> None:
        """Leader failed (or was shed): propagate to followers, memoize
        nothing — the next request retries the computation."""
        with self._lock:
            self._inflight.pop(entry.key, None)
        entry.future.set_exception(exc)

    # -- introspection --------------------------------------------------------

    def dedup_ratio(self) -> float:
        """Fraction of served check requests that shared a computation."""
        with self._lock:
            if self.requests == 0:
                return 0.0
            return 1.0 - (self.computed / self.requests)

    def stats(self) -> dict:
        with self._lock:
            requests = self.requests
            computed = self.computed
            return {
                "requests": requests,
                "computed": computed,
                "coalesced_inflight": self.coalesced_inflight,
                "coalesced_memo": self.coalesced_memo,
                "memo_entries": len(self._memo),
                "dedup_ratio": round(
                    1.0 - (computed / requests) if requests else 0.0, 4
                ),
            }
