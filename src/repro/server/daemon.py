"""Transports for the analysis service: stdio and TCP.

Both speak the newline-delimited protocol of
:mod:`repro.server.protocol` and share one
:class:`~repro.server.service.AnalysisService`, so a ``shutdown`` frame
on any connection stops the daemon.

* ``serve_stdio`` — one client on stdin/stdout; what editors and the CI
  smoke job drive.
* ``serve_tcp`` — a threading TCP server for a handful of concurrent
  clients; the engine lock serializes actual analysis.  For fleet
  traffic (hundreds of clients, backpressure, port sharing) use the
  asyncio transport in :mod:`repro.server.async_daemon` instead —
  ``mlffi-check serve --tcp`` defaults to it.
"""

from __future__ import annotations

import json
import socketserver
import sys
import threading
import time
from typing import IO, Optional

from ..telemetry import JsonLogger, current_tracer, span
from .service import AnalysisService


def handle_line_logged(
    service: AnalysisService, line: str, log: Optional[JsonLogger]
) -> Optional[str]:
    """``service.handle_line`` plus the per-request telemetry the sync
    transports owe: a ``--log-json`` event and a ``request`` span.

    The sync transports have no request metadata of their own (unlike
    the asyncio daemon, whose dispatcher also knows the coalescing
    outcome), so the event is reconstructed from the wire frames: the
    request supplies ``id``/``method``, the response supplies
    ``outcome`` (and ``code`` on errors).  With neither a log nor a
    tracer the frame passes straight through.
    """
    if not line.strip() or (log is None and current_tracer() is None):
        return service.handle_line(line)
    event: dict = {"event": "request", "id": None, "method": None}
    try:
        frame = json.loads(line)
        event["id"] = frame.get("id")
        event["method"] = frame.get("method")
    except ValueError:
        pass
    started = time.perf_counter()
    with span(event["method"] or "?", cat="request"):
        response = service.handle_line(line)
    if log is None:
        return response
    error = None
    if response is not None:
        try:
            error = json.loads(response).get("error")
        except ValueError:
            pass
    if error is not None:
        event["outcome"] = "error"
        event["code"] = error.get("code")
    else:
        event["outcome"] = "ok"
    event["duration_ms"] = round((time.perf_counter() - started) * 1e3, 3)
    log.emit(event)
    return response


def serve_stdio(
    service: AnalysisService,
    stdin: Optional[IO[str]] = None,
    stdout: Optional[IO[str]] = None,
    *,
    log: Optional[JsonLogger] = None,
) -> int:
    """Serve one client over text streams until EOF or ``shutdown``."""
    reader = stdin if stdin is not None else sys.stdin
    writer = stdout if stdout is not None else sys.stdout
    try:
        for line in reader:
            response = handle_line_logged(service, line, log)
            if response is not None:
                writer.write(response)
                writer.flush()
            if service.shutdown_requested.is_set():
                break
    except (BrokenPipeError, KeyboardInterrupt):
        pass  # client hung up / operator interrupt: a clean daemon exit
    return 0


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        service: AnalysisService = self.server.service  # type: ignore[attr-defined]
        log = self.server.log  # type: ignore[attr-defined]
        while True:
            raw = self.rfile.readline()
            if not raw:
                return
            response = handle_line_logged(
                service, raw.decode("utf-8", "replace"), log
            )
            if response is not None:
                self.wfile.write(response.encode("utf-8"))
                self.wfile.flush()
            if service.shutdown_requested.is_set():
                # stop accepting from a helper thread: shutdown() blocks
                # until serve_forever() returns, so it must not run here
                threading.Thread(
                    target=self.server.shutdown, daemon=True
                ).start()
                return


class AnalysisTCPServer(socketserver.ThreadingTCPServer):
    """TCP transport bound to one service; ``server_address`` tells the
    caller which port an ephemeral bind (port 0) actually got."""

    #: pinned: a restarted daemon must rebind its port immediately, not
    #: wait out TIME_WAIT from its predecessor's connections — CI and
    #: supervisor restarts depend on this (see the rebind regression
    #: test in tests/server/test_daemon.py)
    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: AnalysisService,
        log: Optional[JsonLogger] = None,
    ):
        super().__init__(address, _Handler)
        self.service = service
        self.log = log


def serve_tcp(
    service: AnalysisService,
    host: str = "127.0.0.1",
    port: int = 9178,
    *,
    ready: Optional[threading.Event] = None,
    log: Optional[JsonLogger] = None,
) -> int:
    """Serve until a ``shutdown`` frame arrives; returns 0."""
    with AnalysisTCPServer((host, port), service, log) as server:
        if ready is not None:
            ready.set()
        bound = server.server_address
        print(
            f"mlffi-check serve: listening on {bound[0]}:{bound[1]}",
            file=sys.stderr,
            flush=True,
        )
        server.serve_forever(poll_interval=0.1)
    return 0
