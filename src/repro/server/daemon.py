"""Transports for the analysis service: stdio and TCP.

Both speak the newline-delimited protocol of
:mod:`repro.server.protocol` and share one
:class:`~repro.server.service.AnalysisService`, so a ``shutdown`` frame
on any connection stops the daemon.

* ``serve_stdio`` — one client on stdin/stdout; what editors and the CI
  smoke job drive.
* ``serve_tcp`` — a threading TCP server for a handful of concurrent
  clients; the engine lock serializes actual analysis.  For fleet
  traffic (hundreds of clients, backpressure, port sharing) use the
  asyncio transport in :mod:`repro.server.async_daemon` instead —
  ``mlffi-check serve --tcp`` defaults to it.
"""

from __future__ import annotations

import socketserver
import sys
import threading
from typing import IO, Optional

from .service import AnalysisService


def serve_stdio(
    service: AnalysisService,
    stdin: Optional[IO[str]] = None,
    stdout: Optional[IO[str]] = None,
) -> int:
    """Serve one client over text streams until EOF or ``shutdown``."""
    reader = stdin if stdin is not None else sys.stdin
    writer = stdout if stdout is not None else sys.stdout
    try:
        for line in reader:
            response = service.handle_line(line)
            if response is not None:
                writer.write(response)
                writer.flush()
            if service.shutdown_requested.is_set():
                break
    except (BrokenPipeError, KeyboardInterrupt):
        pass  # client hung up / operator interrupt: a clean daemon exit
    return 0


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        service: AnalysisService = self.server.service  # type: ignore[attr-defined]
        while True:
            raw = self.rfile.readline()
            if not raw:
                return
            response = service.handle_line(
                raw.decode("utf-8", "replace")
            )
            if response is not None:
                self.wfile.write(response.encode("utf-8"))
                self.wfile.flush()
            if service.shutdown_requested.is_set():
                # stop accepting from a helper thread: shutdown() blocks
                # until serve_forever() returns, so it must not run here
                threading.Thread(
                    target=self.server.shutdown, daemon=True
                ).start()
                return


class AnalysisTCPServer(socketserver.ThreadingTCPServer):
    """TCP transport bound to one service; ``server_address`` tells the
    caller which port an ephemeral bind (port 0) actually got."""

    #: pinned: a restarted daemon must rebind its port immediately, not
    #: wait out TIME_WAIT from its predecessor's connections — CI and
    #: supervisor restarts depend on this (see the rebind regression
    #: test in tests/server/test_daemon.py)
    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: AnalysisService):
        super().__init__(address, _Handler)
        self.service = service


def serve_tcp(
    service: AnalysisService,
    host: str = "127.0.0.1",
    port: int = 9178,
    *,
    ready: Optional[threading.Event] = None,
) -> int:
    """Serve until a ``shutdown`` frame arrives; returns 0."""
    with AnalysisTCPServer((host, port), service) as server:
        if ready is not None:
            ready.set()
        bound = server.server_address
        print(
            f"mlffi-check serve: listening on {bound[0]}:{bound[1]}",
            file=sys.stderr,
            flush=True,
        )
        server.serve_forever(poll_interval=0.1)
    return 0
