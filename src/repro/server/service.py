"""Method dispatch for the analysis service.

:class:`AnalysisService` owns one :class:`~repro.engine.IncrementalEngine`
and maps protocol methods onto it.  It is transport-agnostic: the stdio
loop, the threading TCP server, the asyncio daemon, and in-process users
(:class:`repro.api.Session`) all call :meth:`handle_line` / :meth:`handle`
with plain dicts.

Methods:

``ping``
    Liveness probe; returns the protocol version and corpus size.
``check``
    Incremental re-check.  Optional ``units`` (list of paths) restricts
    the submission.  The result is the full-corpus report dict plus an
    ``incremental`` stanza saying which units were submitted (*checked*),
    which really re-analyzed (*ran*), how many were served from resident
    state (*reused*), and which dirty units a restricted check skipped —
    their rows are pre-edit results (*stale*).

    ``check`` is **coalesced** (:mod:`repro.server.coalesce`): identical
    concurrent requests share one computation, and repeat requests at an
    unchanged engine revision replay the memoized encoded result.  The
    coalesced response is byte-identical to an uncoalesced one except
    for the echoed ``id`` (timing fields replay the leader's values).

    Optional ``link: true`` also runs the whole-program link pass over
    the corpus's interface summaries and attaches its report as a
    ``link`` stanza (the params participate in the coalescing key, so
    linked and unlinked checks never share a memo).
``link``
    Bring the corpus up to date, then union every unit's
    :class:`~repro.linker.summary.InterfaceSummary` and report cross-unit
    inconsistencies (``LINK_*`` kinds).  Returns the full check report
    with the ``link`` stanza — the same shape as ``check`` with
    ``link: true``.
``invalidate``
    ``paths`` (required list) were created/edited/deleted; re-reads them
    and returns the affected unit names.  Dirty units re-check on the
    next ``check``.
``status``
    Engine introspection: units, dirty set, cache-tier statistics, plus
    ``server`` (queue depth / shed counters, fed by the transport) and
    ``coalescing`` stanzas.
``rules``
    The stable rule registry (:mod:`repro.rules`).  Optional ``dialect``
    restricts the listing to one pack; unknown packs are an
    ``INVALID_PARAMS`` error.  Pure metadata — never touches the engine,
    so IDE clients can populate severity maps before the first check.
``shutdown``
    Acknowledges, then makes the transport loop exit.
"""

from __future__ import annotations

import hashlib
import threading
import time
from typing import Optional

from .. import kernel, seeds
from ..engine import IncrementalEngine
from ..rules import REGISTRY as RULE_REGISTRY
from ..rules import rules_pack
from ..telemetry import Exposition, span
from ..telemetry.metrics import PROM_CONTENT_TYPE, REGISTRY
from . import protocol
from .coalesce import CheckCoalescer, InflightEntry


class LoadGauge:
    """Backpressure bookkeeping shared by service and transport.

    The asyncio daemon acquires a slot per computation it dispatches to
    its worker pool; when ``limit`` (workers + queue allowance) is
    exhausted the request is *shed* with a
    :data:`~repro.server.protocol.OVERLOADED` error instead of piling
    onto an unbounded queue.  ``status`` surfaces the counters so a
    load balancer can watch saturation without provoking it.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: concurrent computation cap; ``None`` = unbounded (stdio and
        #: threading transports, which carry their own natural limits)
        self.limit: Optional[int] = None
        self.workers = 0
        self.max_queue = 0
        self.in_flight = 0
        self.peak_in_flight = 0
        self.shed = 0
        self.served = 0

    def configure(self, workers: int, max_queue: int) -> None:
        with self._lock:
            self.workers = workers
            self.max_queue = max_queue
            self.limit = workers + max_queue

    def try_acquire(self) -> bool:
        """Claim a computation slot; False means shed this request."""
        with self._lock:
            if self.limit is not None and self.in_flight >= self.limit:
                self.shed += 1
                return False
            self.in_flight += 1
            if self.in_flight > self.peak_in_flight:
                self.peak_in_flight = self.in_flight
            return True

    def release(self) -> None:
        with self._lock:
            self.in_flight -= 1
            self.served += 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "workers": self.workers,
                "max_queue": self.max_queue,
                "queue_depth": max(0, self.in_flight - self.workers),
                "in_flight": self.in_flight,
                "peak_in_flight": self.peak_in_flight,
                "shed": self.shed,
                "served": self.served,
            }


class Overloaded(Exception):
    """Raised internally when the daemon sheds a request."""

    def __init__(self, gauge: LoadGauge):
        self.data = gauge.snapshot()
        super().__init__(
            "server overloaded: analysis queue is full "
            f"({self.data['in_flight']} in flight, "
            f"limit {self.data['workers']} workers "
            f"+ {self.data['max_queue']} queued)"
        )


class AnalysisService:
    """One resident engine behind a JSON-RPC method table."""

    #: how long a coalescing follower waits on its leader before giving
    #: up; generous — a leader holds the engine lock at most one check
    FOLLOWER_TIMEOUT_S = 600.0

    def __init__(self, engine: IncrementalEngine):
        self.engine = engine
        self.shutdown_requested = threading.Event()
        self.coalescer = CheckCoalescer()
        self.load = LoadGauge()
        self.started_monotonic = time.monotonic()
        self._methods = {
            "ping": self._ping,
            "check": self._check,
            "link": self._link,
            "invalidate": self._invalidate,
            "status": self._status,
            "metrics": self._metrics,
            "rules": self._rules,
            "shutdown": self._shutdown,
        }

    # -- dispatch -------------------------------------------------------------

    def handle_line(self, line: str) -> Optional[str]:
        """Serve one wire frame; blank lines are ignored (returns None).

        ``check`` frames take the coalesced fast path so every transport
        that speaks lines (stdio, threading TCP, asyncio) deduplicates
        identical work; other methods dispatch normally."""
        if not line.strip():
            return None
        try:
            request = protocol.decode_line(line)
        except protocol.ProtocolError as exc:
            return protocol.encode(
                protocol.error_response(None, exc.code, str(exc))
            )
        if request.method == "check":
            return self.check_line(request)
        return protocol.encode(self.handle_request(request))

    def handle(self, line: str) -> dict:
        """Decode, dispatch, and build the response object for one frame.

        This is the un-coalesced path (in-process users who want plain
        dicts); wire transports go through :meth:`handle_line`."""
        try:
            request = protocol.decode_line(line)
        except protocol.ProtocolError as exc:
            return protocol.error_response(None, exc.code, str(exc))
        return self.handle_request(request)

    def handle_request(self, request: protocol.Request) -> dict:
        """Dispatch one decoded request to its method handler."""
        method = self._methods.get(request.method)
        if method is None:
            return protocol.error_response(
                request.id,
                protocol.METHOD_NOT_FOUND,
                f"unknown method `{request.method}` "
                f"(known: {', '.join(sorted(self._methods))})",
            )
        try:
            result = method(request.params)
        except protocol.ProtocolError as exc:
            return protocol.error_response(request.id, exc.code, str(exc))
        except Exception as exc:  # noqa: BLE001 - must not kill the daemon
            return protocol.error_response(
                request.id,
                protocol.INTERNAL_ERROR,
                f"{type(exc).__name__}: {exc}",
            )
        return protocol.result_response(request.id, result)

    # -- coalesced check ------------------------------------------------------

    def check_key(self, params: dict) -> tuple:
        """Coalescing key: params digest at the current engine revision.

        Reading the revision *before* the lookup is the safety argument:
        a memo filed under this key encodes state at least as new as the
        revision, so coalesced responses are never staler than an
        uncoalesced check issued at the same moment."""
        self._validate_check_params(params)
        digest = hashlib.sha256(
            protocol.encode_fragment(params).encode("utf-8")
        ).hexdigest()
        return (digest, self.engine.revision)

    def compute_check(self, params: dict) -> str:
        """Run the engine check and return the encoded result fragment."""
        with span("engine", cat="phase"):
            data = self._check(params)
        with span("encode", cat="phase"):
            return protocol.encode_fragment(data)

    def check_line(self, request: protocol.Request) -> str:
        """One coalesced ``check``: blocking form for sync transports."""
        try:
            key = self.check_key(request.params)
        except protocol.ProtocolError as exc:
            return protocol.encode(
                protocol.error_response(request.id, exc.code, str(exc))
            )
        probed = self.coalescer.probe(key)
        if isinstance(probed, str):
            return protocol.splice_result(request.id, probed)
        if probed is None:
            role, entry = self.coalescer.begin(key)
            if role == "leader":
                try:
                    fragment = self.lead_check(entry, request.params)
                except Exception as exc:  # noqa: BLE001 - must not kill the daemon
                    return protocol.encode(self.error_for(request.id, exc))
                return protocol.splice_result(request.id, fragment)
            probed = entry
        try:
            fragment = probed.future.result(timeout=self.FOLLOWER_TIMEOUT_S)
        except Exception as exc:  # noqa: BLE001 - report, don't die
            return protocol.encode(self.error_for(request.id, exc))
        return protocol.splice_result(request.id, fragment)

    def lead_check(self, entry: InflightEntry, params: dict) -> str:
        """Compute as coalescing leader and publish to every follower.

        Raises on failure (after propagating the same failure to the
        followers) — the caller renders it with :meth:`error_for`."""
        try:
            fragment = self.compute_check(params)
        except BaseException as exc:
            self.coalescer.fail(entry, exc)
            raise
        self.coalescer.resolve(entry, fragment)
        return fragment

    def error_for(self, request_id, exc: BaseException) -> dict:
        """Map an exception to the response object for one request id."""
        if isinstance(exc, Overloaded):
            return protocol.error_response(
                request_id, protocol.OVERLOADED, str(exc), data=exc.data
            )
        if isinstance(exc, protocol.ProtocolError):
            return protocol.error_response(request_id, exc.code, str(exc))
        return protocol.error_response(
            request_id,
            protocol.INTERNAL_ERROR,
            f"{type(exc).__name__}: {exc}",
        )

    # -- methods --------------------------------------------------------------

    def _ping(self, params: dict) -> dict:
        return {
            "pong": True,
            "protocol": protocol.PROTOCOL_VERSION,
            "dialect": self.engine.dialect,
            "units": len(self.engine.unit_names),
        }

    @staticmethod
    def _validate_check_params(params: dict) -> None:
        units = params.get("units")
        if units is not None and (
            not isinstance(units, list)
            or not all(isinstance(u, str) for u in units)
        ):
            raise protocol.ProtocolError(
                protocol.INVALID_PARAMS, "units must be a list of paths"
            )
        link = params.get("link")
        if link is not None and not isinstance(link, bool):
            raise protocol.ProtocolError(
                protocol.INVALID_PARAMS, "link must be a boolean"
            )

    def _check(self, params: dict) -> dict:
        self._validate_check_params(params)
        if params.get("link"):
            # the link pass spans the whole corpus, so a linked check
            # ignores any units restriction and brings everything current
            report, link_report = self.engine.link()
            data = report.to_dict()
            data["link"] = link_report.to_dict()
            return data
        report = self.engine.check(params.get("units"))
        return report.to_dict()

    def _link(self, params: dict) -> dict:
        return self._check({**params, "link": True})

    def _invalidate(self, params: dict) -> dict:
        paths = params.get("paths")
        if not isinstance(paths, list) or not all(
            isinstance(p, str) for p in paths
        ):
            raise protocol.ProtocolError(
                protocol.INVALID_PARAMS, "paths must be a list of strings"
            )
        affected = self.engine.invalidate(paths)
        return {"invalidated": sorted(affected)}

    def _status(self, params: dict) -> dict:
        status = self.engine.status()
        status["server"] = self.load.snapshot()
        status["server"]["uptime_seconds"] = round(
            time.monotonic() - self.started_monotonic, 3
        )
        status["coalescing"] = self.coalescer.stats()
        status["kernel"] = kernel.describe()
        status["seeds"] = seeds.seed_stats()
        return status

    def _metrics(self, params: dict) -> dict:
        """Prometheus text exposition over everything the service can
        observe without provoking work: the engine's cache tiers, the
        load gauge, the coalescer, and the process-wide registry.

        Pull-style by design — the 10k req/s coalescing fast path pushes
        nothing; these numbers come from counters the hot paths already
        maintain."""
        exposition = Exposition(REGISTRY)
        cache = self.engine.cache_status()
        for slot in ("memory", "disk"):
            tier = (
                cache.get("cold_tier", "disk") if slot == "disk" else slot
            )
            exposition.add_stats(
                "mlffi_cache", cache[slot], kind="counter", tier=tier
            )
        coalesce = self.coalescer.stats()
        ratio = coalesce.pop("dedup_ratio", 0.0)
        exposition.add_stats("mlffi_coalesce", coalesce, kind="counter")
        exposition.add("mlffi_coalesce_dedup_ratio", ratio, kind="gauge")
        server = self.load.snapshot()
        for name in ("queue_depth", "in_flight", "workers", "max_queue"):
            exposition.add(
                f"mlffi_server_{name}", server[name], kind="gauge"
            )
        for name in ("shed", "served", "peak_in_flight"):
            exposition.add(
                f"mlffi_server_{name}_total", server[name], kind="counter"
            )
        exposition.add(
            "mlffi_server_uptime_seconds",
            round(time.monotonic() - self.started_monotonic, 3),
            kind="gauge",
        )
        exposition.add(
            "mlffi_engine_revision", self.engine.revision, kind="counter"
        )
        return {
            "content_type": PROM_CONTENT_TYPE,
            "text": exposition.render(),
        }

    def _rules(self, params: dict) -> dict:
        """The rule registry, optionally filtered to one pack.

        Metadata only: serving it must not provoke engine work, so IDE
        clients can fetch severities before submitting a first check."""
        dialect = params.get("dialect")
        if dialect is not None:
            if not isinstance(dialect, str):
                raise protocol.ProtocolError(
                    protocol.INVALID_PARAMS, "dialect must be a string"
                )
            if dialect not in RULE_REGISTRY.dialects():
                raise protocol.ProtocolError(
                    protocol.INVALID_PARAMS,
                    f"unknown rule pack `{dialect}` "
                    f"(known: {', '.join(RULE_REGISTRY.dialects())})",
                )
        rules = rules_pack(dialect)
        return {"rules": [rule.to_dict() for rule in rules]}

    def _shutdown(self, params: dict) -> dict:
        self.shutdown_requested.set()
        return {"ok": True}
