"""Method dispatch for the analysis service.

:class:`AnalysisService` owns one :class:`~repro.engine.IncrementalEngine`
and maps protocol methods onto it.  It is transport-agnostic: the stdio
loop, the TCP server, and in-process users (:class:`repro.api.Session`)
all call :meth:`handle_line` / :meth:`handle` with plain dicts.

Methods:

``ping``
    Liveness probe; returns the protocol version and corpus size.
``check``
    Incremental re-check.  Optional ``units`` (list of paths) restricts
    the submission.  The result is the full-corpus report dict plus an
    ``incremental`` stanza saying which units were submitted (*checked*),
    which really re-analyzed (*ran*), how many were served from resident
    state (*reused*), and which dirty units a restricted check skipped —
    their rows are pre-edit results (*stale*).
``invalidate``
    ``paths`` (required list) were created/edited/deleted; re-reads them
    and returns the affected unit names.  Dirty units re-check on the
    next ``check``.
``status``
    Engine introspection: units, dirty set, cache-tier statistics.
``shutdown``
    Acknowledges, then makes the transport loop exit.
"""

from __future__ import annotations

import threading
from typing import Optional

from ..engine import IncrementalEngine
from . import protocol


class AnalysisService:
    """One resident engine behind a JSON-RPC method table."""

    def __init__(self, engine: IncrementalEngine):
        self.engine = engine
        self.shutdown_requested = threading.Event()
        self._methods = {
            "ping": self._ping,
            "check": self._check,
            "invalidate": self._invalidate,
            "status": self._status,
            "shutdown": self._shutdown,
        }

    # -- dispatch -------------------------------------------------------------

    def handle_line(self, line: str) -> Optional[str]:
        """Serve one wire frame; blank lines are ignored (returns None)."""
        if not line.strip():
            return None
        return protocol.encode(self.handle(line))

    def handle(self, line: str) -> dict:
        """Decode, dispatch, and build the response object for one frame."""
        try:
            request = protocol.decode_line(line)
        except protocol.ProtocolError as exc:
            return protocol.error_response(None, exc.code, str(exc))
        method = self._methods.get(request.method)
        if method is None:
            return protocol.error_response(
                request.id,
                protocol.METHOD_NOT_FOUND,
                f"unknown method `{request.method}` "
                f"(known: {', '.join(sorted(self._methods))})",
            )
        try:
            result = method(request.params)
        except protocol.ProtocolError as exc:
            return protocol.error_response(request.id, exc.code, str(exc))
        except Exception as exc:  # noqa: BLE001 - must not kill the daemon
            return protocol.error_response(
                request.id,
                protocol.INTERNAL_ERROR,
                f"{type(exc).__name__}: {exc}",
            )
        return protocol.result_response(request.id, result)

    # -- methods --------------------------------------------------------------

    def _ping(self, params: dict) -> dict:
        return {
            "pong": True,
            "protocol": protocol.PROTOCOL_VERSION,
            "dialect": self.engine.dialect,
            "units": len(self.engine.unit_names),
        }

    def _check(self, params: dict) -> dict:
        units = params.get("units")
        if units is not None and (
            not isinstance(units, list)
            or not all(isinstance(u, str) for u in units)
        ):
            raise protocol.ProtocolError(
                protocol.INVALID_PARAMS, "units must be a list of paths"
            )
        report = self.engine.check(units)
        return report.to_dict()

    def _invalidate(self, params: dict) -> dict:
        paths = params.get("paths")
        if not isinstance(paths, list) or not all(
            isinstance(p, str) for p in paths
        ):
            raise protocol.ProtocolError(
                protocol.INVALID_PARAMS, "paths must be a list of strings"
            )
        affected = self.engine.invalidate(paths)
        return {"invalidated": sorted(affected)}

    def _status(self, params: dict) -> dict:
        return self.engine.status()

    def _shutdown(self, params: dict) -> dict:
        self.shutdown_requested.set()
        return {"ok": True}
