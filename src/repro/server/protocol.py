"""Wire format of the analysis service: newline-delimited JSON-RPC.

One request or response per line.  Requests are objects with an ``id``
(number or string, echoed back), a ``method`` name, and an optional
``params`` object::

    {"id": 1, "method": "check", "params": {}}

Responses carry either ``result`` or ``error`` (never both)::

    {"id": 1, "protocol": 1, "result": {...}}
    {"id": 1, "protocol": 1, "error": {"code": -32601, "message": "..."}}

Serialization is *stable*: keys sorted, compact separators, ASCII-safe —
so the same diagnostics always hit the wire as the same bytes, which is
what the bench gate (daemon output byte-identical to one-shot ``check``)
and CI smoke diffs rely on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Optional

#: Bump on incompatible wire changes; echoed in every response.
PROTOCOL_VERSION = 1

# JSON-RPC 2.0 error codes (the subset this service uses)
PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
INTERNAL_ERROR = -32603
#: implementation-defined (server-error range): the daemon shed this
#: request because its analysis queue was full.  Shed responses carry
#: ``error.data.queue_depth`` so clients can back off proportionally.
OVERLOADED = -32005


class ProtocolError(Exception):
    """A malformed frame; carries the JSON-RPC error code."""

    def __init__(self, code: int, message: str):
        self.code = code
        super().__init__(message)


@dataclass(frozen=True)
class Request:
    """A decoded request frame."""

    id: Any
    method: str
    params: dict


def encode(payload: dict) -> str:
    """One stable wire line (sorted keys, compact, trailing newline)."""
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    )


def encode_fragment(payload: object) -> str:
    """Stable serialization of one value, without the frame newline.

    This is the inner encoding :func:`splice_result` splices into a
    response line, so it must match :func:`encode` byte for byte.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def splice_result(request_id: Any, result_fragment: str) -> str:
    """Assemble a result response around an already-encoded result.

    The coalescing layer serializes a shared ``check`` result once and
    fans it out to every waiting client; only the echoed ``id`` differs
    per response.  Because ``encode`` sorts keys and
    ``id < protocol < result`` is already sorted order, splicing the
    pre-encoded fragment is byte-identical to
    ``encode(result_response(request_id, result))`` — the stability
    contract the bench gates diff against.
    """
    return (
        '{"id":'
        + encode_fragment(request_id)
        + ',"protocol":'
        + str(PROTOCOL_VERSION)
        + ',"result":'
        + result_fragment
        + "}\n"
    )


def decode_line(line: str) -> Request:
    """Parse one frame; raises :class:`ProtocolError` on malformed input."""
    try:
        data = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(PARSE_ERROR, f"invalid JSON: {exc}") from None
    if not isinstance(data, dict):
        raise ProtocolError(INVALID_REQUEST, "request must be an object")
    method = data.get("method")
    if not isinstance(method, str) or not method:
        raise ProtocolError(INVALID_REQUEST, "missing method name")
    params = data.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(INVALID_PARAMS, "params must be an object")
    return Request(id=data.get("id"), method=method, params=params)


def result_response(request_id: Any, result: dict) -> dict:
    return {"id": request_id, "protocol": PROTOCOL_VERSION, "result": result}


def error_response(
    request_id: Any, code: int, message: str, data: Optional[dict] = None
) -> dict:
    error: dict = {"code": code, "message": message}
    if data is not None:
        error["data"] = data
    return {"id": request_id, "protocol": PROTOCOL_VERSION, "error": error}
