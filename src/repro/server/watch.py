"""Polling file-watcher driving the incremental engine.

No inotify/kqueue dependency: a portable mtime+size snapshot of the
project tree is diffed every ``interval`` seconds, and any change —
created, edited, or deleted sources — is fed to
:meth:`~repro.engine.IncrementalEngine.invalidate` followed by an
incremental :meth:`~repro.engine.IncrementalEngine.check`.  This is the
``mlffi-check watch`` workflow; it shares the engine (and therefore the
caches and the dependency graph) with the JSON-RPC daemon.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional

from ..boundary import get_dialect
from ..engine import IncrementalEngine, IncrementalReport


@dataclass(frozen=True)
class WatchEvent:
    """One observed change set and the re-check it triggered."""

    changed: tuple[str, ...]
    affected: tuple[str, ...]
    report: IncrementalReport


class Watcher:
    """Snapshot-diff watcher over one engine's project root."""

    def __init__(self, engine: IncrementalEngine, interval: float = 1.0):
        self.engine = engine
        self.interval = interval
        spec = get_dialect(engine.dialect)
        self.suffixes = tuple(spec.host_suffixes) + (".c", ".h")
        self._snapshot = self._scan()

    def _scan(self) -> dict[str, tuple[float, int]]:
        snapshot: dict[str, tuple[float, int]] = {}
        root = Path(self.engine.root)
        if not root.is_dir():
            return snapshot
        for path in root.rglob("*"):
            if path.suffix not in self.suffixes or not path.is_file():
                continue
            try:
                stat = path.stat()
            except OSError:
                continue
            snapshot[str(path)] = (stat.st_mtime, stat.st_size)
        return snapshot

    def poll(self) -> Optional[WatchEvent]:
        """Diff the tree once; re-check and report if anything changed."""
        current = self._scan()
        previous = self._snapshot
        changed = sorted(
            set(previous) ^ set(current)
            | {
                path
                for path in set(previous) & set(current)
                if previous[path] != current[path]
            }
        )
        self._snapshot = current
        if not changed:
            return None
        affected = self.engine.invalidate(changed)
        report = self.engine.check()
        return WatchEvent(
            changed=tuple(changed),
            affected=tuple(sorted(affected)),
            report=report,
        )

    def run(
        self,
        *,
        max_polls: Optional[int] = None,
        on_event: Optional[Callable[[WatchEvent], None]] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> int:
        """Poll forever (or ``max_polls`` times); returns polls performed."""
        polls = 0
        while max_polls is None or polls < max_polls:
            sleep(self.interval)
            polls += 1
            event = self.poll()
            if event is not None and on_event is not None:
                on_event(event)
        return polls
