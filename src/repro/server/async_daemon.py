"""Asyncio TCP transport: the high-concurrency face of the daemon.

The threading transport (:mod:`repro.server.daemon`) spends one OS
thread per connection, which caps it at a few hundred mostly-idle
clients.  This transport holds every connection on one event loop and
spends threads only on actual analysis, so fleet traffic — hundreds of
editors and CI bots banging on one daemon — costs what the *work*
costs, not what the connection count costs:

* **fast path inline** — coalescer memo hits and ``shutdown`` are
  answered on the event loop itself: readline, digest, dict lookup, id
  splice, write.  No thread handoff, no engine lock (the coalescing key
  reads the engine revision under its own cheap lock).
* **slow path pooled** — ``check`` leaders, ``invalidate``, ``ping``
  and ``status`` run on a bounded
  :class:`~concurrent.futures.ThreadPoolExecutor` (``workers``
  threads); they all take the engine lock, which an in-flight analysis
  holds end to end, so answering them on the loop would stall every
  connection behind one cold check.  Followers of an in-flight check
  ``await`` the leader's future via :func:`asyncio.wrap_future` without
  occupying a thread.
* **backpressure** — at most ``workers + max_queue`` computations may
  be in flight (:class:`~repro.server.service.LoadGauge`); beyond that
  the daemon *sheds*: the request is answered immediately with an
  :data:`~repro.server.protocol.OVERLOADED` error carrying the current
  ``queue_depth``, instead of growing an unbounded queue until every
  client times out.  Shedding happens *before* coalescer registration,
  so a shed request never strands followers.
* **fleet mode** — ``reuse_port=True`` sets ``SO_REUSEPORT`` so N
  daemon processes can bind one port and the kernel load-balances
  connections across them; point them at one ``--shared-store`` and
  they share a warm cache too.
"""

from __future__ import annotations

import asyncio
import contextlib
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from ..telemetry import JsonLogger, span
from . import protocol
from .service import AnalysisService, Overloaded

DEFAULT_WORKERS = 4
#: computations allowed to wait beyond the worker threads before the
#: daemon starts shedding
DEFAULT_MAX_QUEUE = 64


class _AsyncDaemon:
    def __init__(
        self,
        service: AnalysisService,
        *,
        workers: int,
        max_queue: int,
        log: Optional[JsonLogger] = None,
    ):
        self.service = service
        self.pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="mlffi-worker"
        )
        self.service.load.configure(workers, max_queue)
        self.stopping = asyncio.Event()
        self.log = log

    # -- request handling ------------------------------------------------------

    async def respond(self, request: protocol.Request) -> tuple[str, dict]:
        """Serve one request; returns (wire frame, log metadata)."""
        if request.method == "check":
            return await self.respond_check(request)
        if request.method in ("ping", "status", "invalidate", "metrics"):
            # these all take the engine lock, which a running check holds
            # for its entire analysis — answered on the loop they would
            # stall every connection behind one cold check: off the loop
            loop = asyncio.get_running_loop()
            response = await loop.run_in_executor(
                self.pool, self.service.handle_request, request
            )
        else:
            # shutdown (and unknown-method errors) touch no engine state
            response = self.service.handle_request(request)
        meta = {}
        if "error" in response:
            meta = {
                "outcome": "error",
                "code": response["error"].get("code"),
            }
        return protocol.encode(response), meta

    async def respond_check(
        self, request: protocol.Request
    ) -> tuple[str, dict]:
        service = self.service
        try:
            key = service.check_key(request.params)
        except protocol.ProtocolError as exc:
            return protocol.encode(
                protocol.error_response(request.id, exc.code, str(exc))
            ), {"outcome": "error", "code": exc.code}
        probed = service.coalescer.probe(key)
        if isinstance(probed, str):  # memo hit: the 10k-checks/sec path
            return protocol.splice_result(request.id, probed), {
                "coalesce": "memo"
            }
        if probed is None:
            # a computation would be needed — this is the backpressure
            # point: claim a slot before registering as leader, so a
            # shed request leaves no entry behind for followers to find
            if not service.load.try_acquire():
                return protocol.encode(
                    service.error_for(request.id, Overloaded(service.load))
                ), {"outcome": "shed"}
            try:
                role, entry = service.coalescer.begin(key)
                if role == "leader":
                    loop = asyncio.get_running_loop()
                    try:
                        fragment = await loop.run_in_executor(
                            self.pool,
                            service.lead_check,
                            entry,
                            request.params,
                        )
                    except Exception as exc:  # noqa: BLE001 - report it
                        return protocol.encode(
                            service.error_for(request.id, exc)
                        ), {"outcome": "error", "coalesce": "leader"}
                    return protocol.splice_result(request.id, fragment), {
                        "coalesce": "leader"
                    }
                probed = entry  # lost the begin race: fall through
            finally:
                service.load.release()
        try:
            fragment = await asyncio.wait_for(
                asyncio.wrap_future(probed.future),
                timeout=service.FOLLOWER_TIMEOUT_S,
            )
        except Exception as exc:  # noqa: BLE001 - report, don't die
            return protocol.encode(service.error_for(request.id, exc)), {
                "outcome": "error",
                "coalesce": "follower",
            }
        return protocol.splice_result(request.id, fragment), {
            "coalesce": "follower"
        }

    def _log_request(
        self,
        request: Optional[protocol.Request],
        meta: dict,
        duration_s: float,
    ) -> None:
        """One JSON event per served frame (no-op without ``--log-json``)."""
        if self.log is None:
            return
        event = {
            "event": "request",
            "method": request.method if request else None,
            "id": request.id if request else None,
            "outcome": meta.get("outcome", "ok"),
            "duration_ms": round(duration_s * 1000, 3),
        }
        for key in ("coalesce", "code"):
            if key in meta:
                event[key] = meta[key]
        self.log.emit(event)

    # -- connection loop -------------------------------------------------------

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not self.stopping.is_set():
                raw = await reader.readline()
                if not raw:
                    return
                line = raw.decode("utf-8", "replace")
                if not line.strip():
                    continue
                started = time.perf_counter()
                request = None
                try:
                    request = protocol.decode_line(line)
                except protocol.ProtocolError as exc:
                    response = protocol.encode(
                        protocol.error_response(None, exc.code, str(exc))
                    )
                    meta = {"outcome": "error", "code": exc.code}
                else:
                    with span(request.method, cat="request"):
                        response, meta = await self.respond(request)
                self._log_request(
                    request, meta, time.perf_counter() - started
                )
                writer.write(response.encode("utf-8"))
                await writer.drain()
                if self.service.shutdown_requested.is_set():
                    # only after the ack is drained — a shutdown whose
                    # response the client never sees reads as a crash
                    self.stopping.set()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client hung up mid-frame: their loss, not ours
        finally:
            with contextlib.suppress(Exception):
                writer.close()


async def _serve(
    service: AnalysisService,
    host: str,
    port: int,
    *,
    workers: int,
    max_queue: int,
    reuse_port: bool,
    ready: Optional[threading.Event],
    bound: Optional[list],
    log: Optional[JsonLogger],
) -> int:
    daemon = _AsyncDaemon(
        service, workers=workers, max_queue=max_queue, log=log
    )
    try:
        server = await asyncio.start_server(
            daemon.handle_connection, host, port, reuse_port=reuse_port
        )
    except (ValueError, OSError):
        if not reuse_port:
            raise
        # SO_REUSEPORT unsupported here: degrade to a plain bind so a
        # single-replica deployment still comes up
        print(
            "mlffi-check serve: SO_REUSEPORT unavailable, binding plain",
            file=sys.stderr,
            flush=True,
        )
        server = await asyncio.start_server(
            daemon.handle_connection, host, port, reuse_port=False
        )
    try:
        address = server.sockets[0].getsockname()[:2]
        if bound is not None:
            bound.append(address)
        if ready is not None:
            ready.set()
        print(
            f"mlffi-check serve: listening on {address[0]}:{address[1]} "
            f"(async, workers={workers}, max-queue={max_queue})",
            file=sys.stderr,
            flush=True,
        )
        async with server:
            stopper = asyncio.ensure_future(daemon.stopping.wait())
            try:
                await stopper
            finally:
                stopper.cancel()
    finally:
        daemon.pool.shutdown(wait=False, cancel_futures=True)
    return 0


def serve_async_tcp(
    service: AnalysisService,
    host: str = "127.0.0.1",
    port: int = 9178,
    *,
    workers: int = DEFAULT_WORKERS,
    max_queue: int = DEFAULT_MAX_QUEUE,
    reuse_port: bool = False,
    ready: Optional[threading.Event] = None,
    bound: Optional[list] = None,
    log: Optional[JsonLogger] = None,
) -> int:
    """Serve until a ``shutdown`` frame arrives; returns 0.

    ``bound`` (a list, appended with the ``(host, port)`` actually
    bound) and ``ready`` (set once accepting) let tests bind port 0 and
    discover where the daemon landed.  ``log``, when given, receives one
    JSON event per served frame (``--log-json``).
    """
    try:
        return asyncio.run(
            _serve(
                service,
                host,
                port,
                workers=workers,
                max_queue=max_queue,
                reuse_port=reuse_port,
                ready=ready,
                bound=bound,
                log=log,
            )
        )
    except KeyboardInterrupt:
        return 0
