"""Persistent analysis service.

A long-running daemon around :class:`repro.engine.IncrementalEngine`:
ASTs, dialect environments, and typed-unit results stay warm in memory,
and clients drive re-checking over a newline-delimited JSON-RPC protocol
(:mod:`repro.server.protocol`) on stdio or TCP.  Two TCP transports
exist: the simple thread-per-connection server
(:mod:`repro.server.daemon`) and the high-concurrency asyncio daemon
(:mod:`repro.server.async_daemon`) with request coalescing
(:mod:`repro.server.coalesce`) and load shedding.
:mod:`repro.server.watch` is a polling file-watcher that feeds the same
engine, and :class:`repro.api.Session` wraps the service for library
users.
"""

from .async_daemon import (
    DEFAULT_MAX_QUEUE,
    DEFAULT_WORKERS,
    serve_async_tcp,
)
from .coalesce import CheckCoalescer
from .daemon import serve_stdio, serve_tcp
from .protocol import (
    OVERLOADED,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_line,
    encode,
    encode_fragment,
    error_response,
    result_response,
    splice_result,
)
from .service import AnalysisService, LoadGauge, Overloaded
from .watch import WatchEvent, Watcher

__all__ = [
    "AnalysisService",
    "CheckCoalescer",
    "DEFAULT_MAX_QUEUE",
    "DEFAULT_WORKERS",
    "LoadGauge",
    "OVERLOADED",
    "Overloaded",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "WatchEvent",
    "Watcher",
    "decode_line",
    "encode",
    "encode_fragment",
    "error_response",
    "result_response",
    "serve_async_tcp",
    "serve_stdio",
    "serve_tcp",
    "splice_result",
]
