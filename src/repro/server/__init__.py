"""Persistent analysis service.

A long-running daemon around :class:`repro.engine.IncrementalEngine`:
ASTs, dialect environments, and typed-unit results stay warm in memory,
and clients drive re-checking over a newline-delimited JSON-RPC protocol
(:mod:`repro.server.protocol`) on stdio or TCP
(:mod:`repro.server.daemon`).  :mod:`repro.server.watch` is a polling
file-watcher that feeds the same engine, and
:class:`repro.api.Session` wraps the service for library users.
"""

from .daemon import serve_stdio, serve_tcp
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_line,
    encode,
    error_response,
    result_response,
)
from .service import AnalysisService
from .watch import WatchEvent, Watcher

__all__ = [
    "AnalysisService",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "WatchEvent",
    "Watcher",
    "decode_line",
    "encode",
    "error_response",
    "result_response",
    "serve_stdio",
    "serve_tcp",
]
