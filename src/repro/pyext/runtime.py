"""Knowledge base for the CPython C API, mirroring :mod:`repro.cfront.macros`.

Three tables live here:

* parse hints, so the shared C parser reads extension-module source
  (``PyObject *`` is the boxed-value type, ``PyMethodDef`` et al. are
  known opaque structs, ``NULL`` stays an identifier for the rewrite);
* the typing table for runtime entry points, seeding the checker's
  function environment exactly like the OCaml runtime table does.  Every
  entry is ``nogc``: CPython's collector neither moves objects nor frees
  owned references behind C's back, so the OCaml protection obligations
  never fire — the reference-count discipline is this dialect's analogue
  and has its own pass (:mod:`repro.pyext.refcount`);
* the reference-semantics classification (new vs borrowed results,
  reference-stealing parameters) that the refcount pass interprets.
"""

from __future__ import annotations


from dataclasses import dataclass

from ..cfront.parser import ParseHints
from ..seeds import seed_table
from ..core.environment import Entry
from ..core.srctypes import (
    CSrcPtr,
    CSrcScalar,
    CSrcStruct,
    CSrcType,
    CSrcValue,
    CSrcVoid,
)
from ..core.types import (
    C_INT,
    C_VOID,
    CFun,
    CPtr,
    CStruct,
    CType,
    CValue,
    NOGC,
    fresh_mt,
)

# -- parse hints ---------------------------------------------------------------

#: Typedefs the CPython headers would have provided.
_TYPEDEFS: dict[str, CSrcType] = {
    "PyObject": CSrcStruct("PyObject"),
    "PyTypeObject": CSrcStruct("PyTypeObject"),
    "PyMethodDef": CSrcStruct("PyMethodDef"),
    "PyModuleDef": CSrcStruct("PyModuleDef"),
    "PyModuleDef_Slot": CSrcStruct("PyModuleDef_Slot"),
    "PyMemberDef": CSrcStruct("PyMemberDef"),
    "PyGetSetDef": CSrcStruct("PyGetSetDef"),
    "PyCFunction": CSrcPtr(CSrcScalar("int")),
    "Py_ssize_t": CSrcScalar("int"),
    "Py_hash_t": CSrcScalar("int"),
    "uint64_t": CSrcScalar("int"),
    "int64_t": CSrcScalar("int"),
    "int32_t": CSrcScalar("int"),
    #: the macro expands to ``PyObject *`` (plus export goo)
    "PyMODINIT_FUNC": CSrcValue(),
}


@seed_table("pyext.parse_hints")
def parse_hints() -> ParseHints:
    """How to read CPython extension source with the shared parser.

    Memoized per process; :class:`ParseHints` is frozen and the parser
    copies the typedef table, so one instance serves every request.
    """
    return ParseHints(
        typedefs=dict(_TYPEDEFS),
        value_pointer_structs=frozenset({"PyObject"}),
        null_is_identifier=True,
    )


# -- runtime entry-point signatures --------------------------------------------


@dataclass(frozen=True)
class PySpec:
    """Shape of one C-API function, in the macros.py spec language.

    Parameter/result kinds: ``value`` (fresh ``α value`` per call site),
    ``int`` (any C scalar), ``charptr``, ``voidptr``, ``valueptr``
    (``PyObject **``), ``moddef`` (``struct PyModuleDef *``), ``void``.
    """

    params: tuple[str, ...]
    result: str


def _kind_to_ct(kind: str) -> CType:
    if kind == "value":
        return CValue(fresh_mt())
    if kind == "int":
        return C_INT
    if kind in ("charptr", "voidptr"):
        return CPtr(C_INT)
    if kind == "valueptr":
        return CPtr(CValue(fresh_mt()))
    if kind == "moddef":
        return CPtr(CStruct("PyModuleDef"))
    if kind == "void":
        return C_VOID
    raise ValueError(f"unknown pyext builtin kind `{kind}`")


def _kind_to_src(kind: str) -> CSrcType:
    if kind == "value":
        return CSrcValue()
    if kind == "int":
        return CSrcScalar("int")
    if kind in ("charptr", "voidptr"):
        return CSrcPtr(CSrcScalar("char"))
    if kind == "valueptr":
        return CSrcPtr(CSrcValue())
    if kind == "moddef":
        return CSrcPtr(CSrcStruct("PyModuleDef"))
    if kind == "void":
        return CSrcVoid()
    raise ValueError(kind)


def spec_to_cfun(spec: PySpec) -> CFun:
    """Materialize a spec with fresh type variables."""
    return CFun(
        params=tuple(_kind_to_ct(k) for k in spec.params),
        result=_kind_to_ct(spec.result),
        effect=NOGC,
    )


#: The CPython API surface extension glue actually uses, plus the
#: ``__pyext_*`` internals the rewrite introduces for varargs macros.
RUNTIME_FUNCTIONS: dict[str, PySpec] = {
    # rewrite targets (see repro.pyext.rewrite)
    "__pyext_null": PySpec((), "value"),
    "__pyext_none": PySpec((), "value"),
    "__pyext_is_null": PySpec(("value",), "int"),
    "__pyext_parse_args": PySpec(("value",), "int"),
    "__pyext_parse_args_kw": PySpec(("value", "value"), "int"),
    "__pyext_build_value": PySpec((), "value"),
    # reference counting
    "Py_INCREF": PySpec(("value",), "void"),
    "Py_DECREF": PySpec(("value",), "void"),
    "Py_XINCREF": PySpec(("value",), "void"),
    "Py_XDECREF": PySpec(("value",), "void"),
    "Py_CLEAR": PySpec(("value",), "void"),
    # scalar conversions
    "PyLong_FromLong": PySpec(("int",), "value"),
    "PyLong_FromSsize_t": PySpec(("int",), "value"),
    "PyLong_FromUnsignedLong": PySpec(("int",), "value"),
    "PyLong_AsLong": PySpec(("value",), "int"),
    "PyLong_AsSsize_t": PySpec(("value",), "int"),
    "PyLong_Check": PySpec(("value",), "int"),
    "PyFloat_FromDouble": PySpec(("int",), "value"),
    "PyFloat_AsDouble": PySpec(("value",), "int"),
    "PyFloat_Check": PySpec(("value",), "int"),
    "PyBool_FromLong": PySpec(("int",), "value"),
    # strings and bytes
    "PyUnicode_FromString": PySpec(("charptr",), "value"),
    "PyUnicode_AsUTF8": PySpec(("value",), "charptr"),
    "PyUnicode_Check": PySpec(("value",), "int"),
    "PyUnicode_Concat": PySpec(("value", "value"), "value"),
    "PyUnicode_GetLength": PySpec(("value",), "int"),
    "PyBytes_FromString": PySpec(("charptr",), "value"),
    "PyBytes_AsString": PySpec(("value",), "charptr"),
    "PyBytes_Size": PySpec(("value",), "int"),
    # tuples
    "PyTuple_New": PySpec(("int",), "value"),
    "PyTuple_Size": PySpec(("value",), "int"),
    "PyTuple_GetItem": PySpec(("value", "int"), "value"),
    "PyTuple_SetItem": PySpec(("value", "int", "value"), "int"),
    "PyTuple_Pack": PySpec(("int", "value"), "value"),
    # lists
    "PyList_New": PySpec(("int",), "value"),
    "PyList_Size": PySpec(("value",), "int"),
    "PyList_GetItem": PySpec(("value", "int"), "value"),
    "PyList_SetItem": PySpec(("value", "int", "value"), "int"),
    "PyList_Append": PySpec(("value", "value"), "int"),
    # dicts
    "PyDict_New": PySpec((), "value"),
    "PyDict_GetItem": PySpec(("value", "value"), "value"),
    "PyDict_GetItemString": PySpec(("value", "charptr"), "value"),
    "PyDict_SetItem": PySpec(("value", "value", "value"), "int"),
    "PyDict_SetItemString": PySpec(("value", "charptr", "value"), "int"),
    "PyDict_Size": PySpec(("value",), "int"),
    # generic object protocol
    "PyObject_CallObject": PySpec(("value", "value"), "value"),
    "PyObject_Call": PySpec(("value", "value", "value"), "value"),
    "PyObject_CallNoArgs": PySpec(("value",), "value"),
    "PyObject_CallOneArg": PySpec(("value", "value"), "value"),
    "PyObject_GetAttrString": PySpec(("value", "charptr"), "value"),
    "PyObject_SetAttrString": PySpec(("value", "charptr", "value"), "int"),
    "PyObject_Repr": PySpec(("value",), "value"),
    "PyObject_Str": PySpec(("value",), "value"),
    "PyObject_IsTrue": PySpec(("value",), "int"),
    "PyObject_Length": PySpec(("value",), "int"),
    "PyObject_Size": PySpec(("value",), "int"),
    "PyCallable_Check": PySpec(("value",), "int"),
    "PySequence_GetItem": PySpec(("value", "int"), "value"),
    "PySequence_Length": PySpec(("value",), "int"),
    "PyNumber_Add": PySpec(("value", "value"), "value"),
    "PyNumber_Multiply": PySpec(("value", "value"), "value"),
    "PyIter_Next": PySpec(("value",), "value"),
    # errors
    "PyErr_SetString": PySpec(("value", "charptr"), "void"),
    "PyErr_SetObject": PySpec(("value", "value"), "void"),
    "PyErr_Format": PySpec(("value", "charptr"), "value"),
    "PyErr_Occurred": PySpec((), "value"),
    "PyErr_Clear": PySpec((), "void"),
    "PyErr_NoMemory": PySpec((), "value"),
    # modules
    "PyModule_Create": PySpec(("moddef",), "value"),
    "PyModule_AddObject": PySpec(("value", "charptr", "value"), "int"),
    "PyModule_AddIntConstant": PySpec(("value", "charptr", "int"), "int"),
    "PyModule_AddStringConstant": PySpec(("value", "charptr", "charptr"), "int"),
    "PyModule_GetDict": PySpec(("value",), "value"),
    "PyImport_AddModule": PySpec(("charptr",), "value"),
    # memory
    "PyMem_Malloc": PySpec(("int",), "voidptr"),
    "PyMem_Free": PySpec(("voidptr",), "void"),
    # GIL bookkeeping commonly seen in glue
    "PyGILState_Ensure": PySpec((), "int"),
    "PyGILState_Release": PySpec(("int",), "void"),
}

#: Well-known runtime globals of value type, visible in every function.
GLOBAL_VALUES: tuple[str, ...] = (
    "Py_None",
    "Py_True",
    "Py_False",
    "Py_NotImplemented",
    "PyExc_TypeError",
    "PyExc_ValueError",
    "PyExc_RuntimeError",
    "PyExc_IndexError",
    "PyExc_KeyError",
    "PyExc_OverflowError",
    "PyExc_ZeroDivisionError",
    "PyExc_StopIteration",
    "PyExc_MemoryError",
)


# Per-process seed memos (PR 5): tables are built once, not per request.
# Sharing is safe because builtins are polymorphic (instantiated afresh at
# every call site) and variable bindings live in each run's own Unifier;
# callers must treat the returned mappings as read-only.


@seed_table("pyext.builtin_entries")
def builtin_entries() -> dict[str, Entry]:
    """The function-environment entries for every C-API entry point (memoized)."""
    return {
        name: Entry(spec_to_cfun(spec))
        for name, spec in RUNTIME_FUNCTIONS.items()
    }


@seed_table("pyext.global_entries")
def global_entries() -> dict[str, Entry]:
    """Bindings for the singleton/exception objects (memoized)."""
    return {name: Entry(CValue(fresh_mt())) for name in GLOBAL_VALUES}


#: Builtins whose types are instantiated afresh at every call site.
POLYMORPHIC_BUILTINS: frozenset[str] = frozenset(RUNTIME_FUNCTIONS)


@seed_table("pyext.lowering_return_types")
def lowering_return_types() -> dict[str, CSrcType]:
    """Static return types for the lowering's symbol table, so calls into
    the C API land in temporaries of the right surface type (memoized)."""
    return {
        name: _kind_to_src(spec.result)
        for name, spec in RUNTIME_FUNCTIONS.items()
    }


# -- reference semantics -------------------------------------------------------

#: Functions returning a *new* (owned) reference the caller must release.
NEW_REF_FUNCTIONS: frozenset[str] = frozenset(
    {
        "PyLong_FromLong",
        "PyLong_FromSsize_t",
        "PyLong_FromUnsignedLong",
        "PyFloat_FromDouble",
        "PyBool_FromLong",
        "PyUnicode_FromString",
        "PyUnicode_Concat",
        "PyBytes_FromString",
        "PyTuple_New",
        "PyTuple_Pack",
        "PyList_New",
        "PyDict_New",
        "PyObject_CallObject",
        "PyObject_Call",
        "PyObject_CallNoArgs",
        "PyObject_CallOneArg",
        "PyObject_GetAttrString",
        "PyObject_Repr",
        "PyObject_Str",
        "PySequence_GetItem",
        "PyNumber_Add",
        "PyNumber_Multiply",
        "PyIter_Next",
        "Py_BuildValue",
        "PyModule_Create",
    }
)

#: Functions returning a *borrowed* reference (do not DECREF, INCREF to keep).
BORROWED_REF_FUNCTIONS: frozenset[str] = frozenset(
    {
        "PyTuple_GetItem",
        "PyList_GetItem",
        "PyDict_GetItem",
        "PyDict_GetItemString",
        "PyErr_Occurred",
        "PyModule_GetDict",
        "PyImport_AddModule",
    }
)

#: Functions that *steal* a reference: name -> stolen argument index.
STEALS_REFERENCE: dict[str, int] = {
    "PyTuple_SetItem": 2,
    "PyList_SetItem": 2,
    "PyModule_AddObject": 2,
}

#: INCREF/DECREF spellings the refcount pass interprets.
INCREF_FUNCTIONS: frozenset[str] = frozenset({"Py_INCREF", "Py_XINCREF"})
DECREF_FUNCTIONS: frozenset[str] = frozenset(
    {"Py_DECREF", "Py_XDECREF", "Py_CLEAR"}
)

#: Statement macros `Py_RETURN_x;` — sugar for INCREF-and-return.
RETURN_MACROS: frozenset[str] = frozenset(
    {"Py_RETURN_NONE", "Py_RETURN_TRUE", "Py_RETURN_FALSE", "Py_RETURN_NOTIMPLEMENTED"}
)
