"""Static checking of ``PyArg_ParseTuple`` / ``Py_BuildValue`` format strings.

A format string is a little type signature in disguise: ``"ii"`` promises
the runtime two C ``int *`` output slots, ``"s"`` a ``char **``, ``"O"`` a
``PyObject **``.  The C compiler cannot see through the varargs, so a
format/argument mismatch scribbles over the wrong amount of stack — the
CPython twin of the ``Int_val``/``Val_int`` confusions the paper checks.

The checker is syntactic and flow-insensitive: for every call with a
literal format we compute the expected argument classes and compare them
with the *declared* C types of the supplied arguments (``&var`` patterns
and plain variables; anything fancier is skipped, never guessed at).
Unknown format characters disable checking of the whole call rather than
risk a false report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cfront import ast
from ..diagnostics import Diagnostic, Kind
from ..core.srctypes import CSrcPtr, CSrcScalar, CSrcType, CSrcValue

#: expected-argument classes
SCALAR = "scalar"  # int*/long*/double* target (ParseTuple) or scalar expr
CHARPTR = "charptr"  # char** target (ParseTuple) or char* expr
VALUE = "value"  # PyObject** target (ParseTuple) or PyObject* expr
ANY = "any"  # converter functions, type objects, buffers: unchecked


@dataclass(frozen=True)
class FormatUnit:
    """One converted argument: its format code and expected class."""

    code: str
    expect: str


_PARSE_SCALAR = set("bBhHiIlkLKnfdpcC")
_PARSE_CHARPTR = set("szyuZ")
_PARSE_VALUE = set("OSUY")

_BUILD_SCALAR = set("bBhHiIlkLKnfdpcC")
_BUILD_CHARPTR = set("szyuU")
_BUILD_VALUE = set("ONS")
_BUILD_NESTING = set("()[]{},")


def parse_tuple_units(fmt: str) -> Optional[list[FormatUnit]]:
    """Units of a ``PyArg_ParseTuple`` format; ``None`` = don't check."""
    units: list[FormatUnit] = []
    i = 0
    while i < len(fmt):
        ch = fmt[i]
        if ch in ":;":
            break  # the rest names the function in error messages
        if ch in "|$() ":
            i += 1
            continue
        if ch == "e":  # es / et (+ optional #): encoding, then buffer
            units.append(FormatUnit(fmt[i : i + 2], ANY))
            units.append(FormatUnit(fmt[i : i + 2], CHARPTR))
            i += 2
            if i < len(fmt) and fmt[i] == "#":
                units.append(FormatUnit("#", SCALAR))
                i += 1
            continue
        if ch == "O":
            if i + 1 < len(fmt) and fmt[i + 1] == "!":
                units.append(FormatUnit("O!", ANY))  # the PyTypeObject *
                units.append(FormatUnit("O!", VALUE))
                i += 2
                continue
            if i + 1 < len(fmt) and fmt[i + 1] == "&":
                units.append(FormatUnit("O&", ANY))  # the converter
                units.append(FormatUnit("O&", ANY))  # its void* box
                i += 2
                continue
            units.append(FormatUnit("O", VALUE))
            i += 1
            continue
        if ch in _PARSE_CHARPTR:
            code = ch
            if i + 1 < len(fmt) and fmt[i + 1] == "*":
                units.append(FormatUnit(ch + "*", ANY))  # Py_buffer
                i += 2
                continue
            units.append(FormatUnit(code, CHARPTR))
            i += 1
            if i < len(fmt) and fmt[i] == "#":
                units.append(FormatUnit("#", SCALAR))
                i += 1
            continue
        if ch in _PARSE_SCALAR:
            units.append(FormatUnit(ch, SCALAR))
            i += 1
            continue
        if ch in _PARSE_VALUE:
            units.append(FormatUnit(ch, VALUE))
            i += 1
            continue
        return None  # unknown code: never guess
    return units


def build_value_units(fmt: str) -> Optional[list[FormatUnit]]:
    """Units of a ``Py_BuildValue`` format; ``None`` = don't check."""
    units: list[FormatUnit] = []
    i = 0
    while i < len(fmt):
        ch = fmt[i]
        if ch in ":;":
            break
        if ch in _BUILD_NESTING or ch == " ":
            i += 1
            continue
        if ch == "O" and i + 1 < len(fmt) and fmt[i + 1] == "&":
            units.append(FormatUnit("O&", ANY))
            units.append(FormatUnit("O&", ANY))
            i += 2
            continue
        if ch in _BUILD_CHARPTR:
            units.append(FormatUnit(ch, CHARPTR))
            i += 1
            if i < len(fmt) and fmt[i] == "#":
                units.append(FormatUnit("#", SCALAR))
                i += 1
            continue
        if ch in _BUILD_SCALAR:
            units.append(FormatUnit(ch, SCALAR))
            i += 1
            continue
        if ch in _BUILD_VALUE:
            units.append(FormatUnit(ch, VALUE))
            i += 1
            continue
        return None
    return units


def _classify(ctype: CSrcType) -> str:
    if isinstance(ctype, CSrcValue):
        return VALUE
    if isinstance(ctype, CSrcScalar):
        return SCALAR
    if isinstance(ctype, CSrcPtr) and isinstance(ctype.target, CSrcScalar):
        return CHARPTR
    return ANY


class _VarTypes:
    """Declared types of a function's parameters and locals."""

    def __init__(self, fn: ast.FunctionDef):
        self.types: dict[str, CSrcType] = dict(fn.params)
        if fn.body is not None:
            self._collect(fn.body)

    def _collect(self, stmt: ast.CStmtOrDecl) -> None:
        if isinstance(stmt, ast.Declaration):
            self.types[stmt.name] = stmt.ctype
        elif isinstance(stmt, ast.Block):
            for item in stmt.items:
                self._collect(item)
        elif isinstance(stmt, ast.IfStmt):
            self._collect(stmt.then)
            if stmt.other is not None:
                self._collect(stmt.other)
        elif isinstance(stmt, (ast.WhileStmt, ast.DoWhileStmt)):
            self._collect(stmt.body)
        elif isinstance(stmt, ast.ForStmt):
            if stmt.init is not None:
                self._collect(stmt.init)
            self._collect(stmt.body)
        elif isinstance(stmt, ast.SwitchStmt):
            for case in stmt.cases:
                for item in case.body:
                    self._collect(item)
        elif isinstance(stmt, ast.LabeledStmt):
            self._collect(stmt.stmt)

    def target_class(self, arg: ast.CExpr) -> Optional[str]:
        """Class of what ``arg`` points at, for an output-pointer slot."""
        if isinstance(arg, ast.Unary) and arg.op == "&":
            operand = arg.operand
            if isinstance(operand, ast.Name):
                ctype = self.types.get(operand.ident)
                return None if ctype is None else _classify(ctype)
            return None
        if isinstance(arg, ast.Name):
            ctype = self.types.get(arg.ident)
            if isinstance(ctype, CSrcPtr):
                return _classify(ctype.target)
        return None

    def value_class(self, arg: ast.CExpr) -> Optional[str]:
        """Class of ``arg`` itself, for a ``Py_BuildValue`` slot."""
        if isinstance(arg, ast.Name):
            ctype = self.types.get(arg.ident)
            return None if ctype is None else _classify(ctype)
        if isinstance(arg, (ast.Num, ast.Binary, ast.Unary)):
            return SCALAR
        if isinstance(arg, ast.Str):
            return CHARPTR
        return None


_EXPECT_NOUN = {
    SCALAR: "a C scalar",
    CHARPTR: "a C string (char *)",
    VALUE: "a PyObject *",
}


def _describe(arg: ast.CExpr) -> str:
    if (
        isinstance(arg, ast.Unary)
        and arg.op == "&"
        and isinstance(arg.operand, ast.Name)
    ):
        return f"&{arg.operand.ident}"
    if isinstance(arg, ast.Name):
        return arg.ident
    return "<expression>"


def _check_parse_call(
    call: ast.Call,
    fmt: str,
    converted: tuple[ast.CExpr, ...],
    vars: _VarTypes,
    function: str,
    callee: str,
    diags: list[Diagnostic],
) -> None:
    units = parse_tuple_units(fmt)
    if units is None:
        return
    if len(units) != len(converted):
        diags.append(
            Diagnostic(
                kind=Kind.PY_FORMAT_MISMATCH,
                span=call.span,
                message=(
                    f"`{callee}` format \"{fmt}\" converts "
                    f"{len(units)} argument(s) but {len(converted)} output "
                    f"pointer(s) are supplied; the runtime will write "
                    f"through stack garbage"
                ),
                function=function,
            )
        )
        return
    for index, (unit, arg) in enumerate(zip(units, converted)):
        if unit.expect is ANY:
            continue
        actual = vars.target_class(arg)
        if actual is None or actual is ANY or actual == unit.expect:
            continue
        diags.append(
            Diagnostic(
                kind=Kind.PY_FORMAT_MISMATCH,
                span=call.span,
                message=(
                    f"`{callee}` format unit '{unit.code}' (argument "
                    f"{index + 1}) writes {_EXPECT_NOUN[unit.expect]} but "
                    f"`{_describe(arg)}` points to {_EXPECT_NOUN[actual]}"
                ),
                function=function,
            )
        )


def _check_build_call(
    call: ast.Call,
    fmt: str,
    supplied: tuple[ast.CExpr, ...],
    vars: _VarTypes,
    function: str,
    diags: list[Diagnostic],
) -> None:
    units = build_value_units(fmt)
    if units is None:
        return
    if len(units) != len(supplied):
        diags.append(
            Diagnostic(
                kind=Kind.PY_FORMAT_MISMATCH,
                span=call.span,
                message=(
                    f"`Py_BuildValue` format \"{fmt}\" consumes "
                    f"{len(units)} argument(s) but {len(supplied)} are "
                    f"supplied"
                ),
                function=function,
            )
        )
        return
    for index, (unit, arg) in enumerate(zip(units, supplied)):
        if unit.expect is ANY:
            continue
        actual = vars.value_class(arg)
        if actual is None or actual is ANY or actual == unit.expect:
            continue
        diags.append(
            Diagnostic(
                kind=Kind.PY_FORMAT_MISMATCH,
                span=call.span,
                message=(
                    f"`Py_BuildValue` format unit '{unit.code}' (argument "
                    f"{index + 1}) consumes {_EXPECT_NOUN[unit.expect]} but "
                    f"`{_describe(arg)}` is {_EXPECT_NOUN[actual]}"
                ),
                function=function,
            )
        )


#: parser entry points: name -> index of the format argument (converted
#: output pointers follow it)
_PARSE_ENTRY_POINTS = {
    "PyArg_ParseTuple": 1,
    "PyArg_ParseTupleAndKeywords": 2,
}

_BUILD_ENTRY_POINTS = {"Py_BuildValue": 0}


def _walk_exprs(node: ast.CExpr, out: list[ast.Call]) -> None:
    if isinstance(node, ast.Call):
        out.append(node)
        for arg in node.args:
            _walk_exprs(arg, out)
        _walk_exprs(node.func, out)
    elif isinstance(node, ast.Unary):
        _walk_exprs(node.operand, out)
    elif isinstance(node, ast.Binary):
        _walk_exprs(node.left, out)
        _walk_exprs(node.right, out)
    elif isinstance(node, ast.Conditional):
        _walk_exprs(node.cond, out)
        _walk_exprs(node.then, out)
        _walk_exprs(node.other, out)
    elif isinstance(node, ast.Cast):
        _walk_exprs(node.operand, out)
    elif isinstance(node, ast.Index):
        _walk_exprs(node.base, out)
        _walk_exprs(node.index, out)
    elif isinstance(node, ast.Member):
        _walk_exprs(node.base, out)
    elif isinstance(node, ast.Assign):
        _walk_exprs(node.target, out)
        _walk_exprs(node.value, out)
    elif isinstance(node, ast.IncDec):
        _walk_exprs(node.target, out)


def _walk_stmts(stmt: ast.CStmtOrDecl, out: list[ast.Call]) -> None:
    if isinstance(stmt, ast.Declaration):
        if stmt.init is not None and not isinstance(stmt.init, ast.InitList):
            _walk_exprs(stmt.init, out)
    elif isinstance(stmt, ast.Block):
        for item in stmt.items:
            _walk_stmts(item, out)
    elif isinstance(stmt, ast.ExprStmt):
        _walk_exprs(stmt.expr, out)
    elif isinstance(stmt, ast.IfStmt):
        _walk_exprs(stmt.cond, out)
        _walk_stmts(stmt.then, out)
        if stmt.other is not None:
            _walk_stmts(stmt.other, out)
    elif isinstance(stmt, (ast.WhileStmt, ast.DoWhileStmt)):
        _walk_exprs(stmt.cond, out)
        _walk_stmts(stmt.body, out)
    elif isinstance(stmt, ast.ForStmt):
        if stmt.init is not None:
            _walk_stmts(stmt.init, out)
        if stmt.cond is not None:
            _walk_exprs(stmt.cond, out)
        if stmt.step is not None:
            _walk_exprs(stmt.step, out)
        _walk_stmts(stmt.body, out)
    elif isinstance(stmt, ast.SwitchStmt):
        _walk_exprs(stmt.scrutinee, out)
        for case in stmt.cases:
            for item in case.body:
                _walk_stmts(item, out)
    elif isinstance(stmt, ast.ReturnStmt):
        if stmt.value is not None:
            _walk_exprs(stmt.value, out)
    elif isinstance(stmt, ast.LabeledStmt):
        _walk_stmts(stmt.stmt, out)


def check_unit(unit: ast.TranslationUnit) -> list[Diagnostic]:
    """All format-string diagnostics for one translation unit."""
    diags: list[Diagnostic] = []
    for fn in unit.functions:
        if fn.body is None:
            continue
        vars = _VarTypes(fn)
        calls: list[ast.Call] = []
        _walk_stmts(fn.body, calls)
        for call in calls:
            if not isinstance(call.func, ast.Name):
                continue
            name = call.func.ident
            if name in _PARSE_ENTRY_POINTS:
                fmt_index = _PARSE_ENTRY_POINTS[name]
                if len(call.args) <= fmt_index:
                    continue
                fmt_arg = call.args[fmt_index]
                if not isinstance(fmt_arg, ast.Str):
                    continue
                converted = call.args[fmt_index + 1 :]
                if name == "PyArg_ParseTupleAndKeywords":
                    # the kwlist pointer sits between format and outputs
                    converted = converted[1:]
                _check_parse_call(
                    call, fmt_arg.value, converted, vars, fn.name, name, diags
                )
            elif name in _BUILD_ENTRY_POINTS:
                fmt_index = _BUILD_ENTRY_POINTS[name]
                if len(call.args) <= fmt_index:
                    continue
                fmt_arg = call.args[fmt_index]
                if not isinstance(fmt_arg, ast.Str):
                    continue
                _check_build_call(
                    call,
                    fmt_arg.value,
                    call.args[fmt_index + 1 :],
                    vars,
                    fn.name,
                    diags,
                )
    return diags
