"""Normalize CPython idioms into the C subset the shared lowering models.

The Figure 5 IR has no varargs and no preprocessor, so a handful of
CPython spellings are rewritten before lowering (the original AST is what
the format and refcount passes read — this pass runs last and feeds the
type inference only):

* ``NULL`` (kept as an identifier by the pyext parse hints) becomes a
  call to the polymorphic builtin ``__pyext_null``, whose fresh ``α
  value`` result lets ``return NULL;`` and ``PyObject *x = NULL;`` type
  without committing other ``NULL`` uses to the value type;
* null tests — ``x == NULL``, ``!x``, bare ``x`` in a condition — on
  expressions known to produce a value become ``__pyext_is_null`` calls
  (values support no arithmetic, and the shared rules refuse raw values
  as conditions); on everything else they become plain boolean tests;
* ``PyArg_ParseTuple(args, fmt, ...)`` collapses to
  ``__pyext_parse_args(args)`` — the varargs tail is the format checker's
  business, not unification's;
* ``Py_BuildValue(fmt, ...)`` collapses to ``__pyext_build_value()``;
* ``PyErr_Format(exc, fmt, ...)`` truncates to its two fixed arguments;
* statement macros ``Py_RETURN_NONE``/``_TRUE``/``_FALSE`` become
  ``return __pyext_none();``.
"""

from __future__ import annotations

from typing import Optional

from ..cfront import ast
from ..core.srctypes import CSrcValue
from .runtime import RETURN_MACROS, RUNTIME_FUNCTIONS

#: call rewrites: callee -> new name + number of leading arguments to keep
_CALL_REWRITES: dict[str, tuple[str, int]] = {
    "PyArg_ParseTuple": ("__pyext_parse_args", 1),
    "PyArg_VaParse": ("__pyext_parse_args", 1),
    "PyArg_ParseTupleAndKeywords": ("__pyext_parse_args_kw", 2),
    "Py_BuildValue": ("__pyext_build_value", 0),
    "PyErr_Format": ("PyErr_Format", 2),
}

#: C-API functions whose result is a value (→ null tests need the builtin)
_VALUE_RESULT_FUNCTIONS = frozenset(
    name for name, spec in RUNTIME_FUNCTIONS.items() if spec.result == "value"
)


def _call(name: str, args: tuple[ast.CExpr, ...], span) -> ast.Call:
    return ast.Call(func=ast.Name(name, span), args=args, span=span)


def _is_null(expr: ast.CExpr) -> bool:
    return isinstance(expr, ast.Name) and expr.ident == "NULL"


class _FunctionRewriter:
    """Rewrites one function body, tracking declared variable types so
    null tests on values can be told apart from null tests on C pointers."""

    def __init__(self, fn: ast.FunctionDef):
        self.var_types: dict[str, object] = dict(fn.params)

    # -- type probes -------------------------------------------------------

    def _is_value_expr(self, expr: ast.CExpr) -> bool:
        if isinstance(expr, ast.Name):
            return isinstance(self.var_types.get(expr.ident), CSrcValue)
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            return expr.func.ident in _VALUE_RESULT_FUNCTIONS
        return False

    # -- expressions -------------------------------------------------------

    def expr(self, node: ast.CExpr) -> ast.CExpr:
        if isinstance(node, ast.Name):
            if node.ident == "NULL":
                return _call("__pyext_null", (), node.span)
            return node
        if isinstance(node, (ast.Num, ast.Str, ast.SizeOf, ast.InitList)):
            return node
        if isinstance(node, ast.Unary):
            return ast.Unary(node.op, self.expr(node.operand), node.span)
        if isinstance(node, ast.Binary):
            if node.op in ("==", "!=") and (
                _is_null(node.left) or _is_null(node.right)
            ):
                return self._null_test(node)
            return ast.Binary(
                node.op, self.expr(node.left), self.expr(node.right), node.span
            )
        if isinstance(node, ast.Conditional):
            return ast.Conditional(
                self.cond(node.cond),
                self.expr(node.then),
                self.expr(node.other),
                node.span,
            )
        if isinstance(node, ast.Cast):
            return ast.Cast(node.ctype, self.expr(node.operand), node.span)
        if isinstance(node, ast.Call):
            return self._rewrite_call(node)
        if isinstance(node, ast.Index):
            return ast.Index(self.expr(node.base), self.expr(node.index), node.span)
        if isinstance(node, ast.Member):
            return ast.Member(
                self.expr(node.base), node.field_name, node.arrow, node.span
            )
        if isinstance(node, ast.Assign):
            return ast.Assign(
                node.op, self.expr(node.target), self.expr(node.value), node.span
            )
        if isinstance(node, ast.IncDec):
            return ast.IncDec(node.op, self.expr(node.target), node.span)
        return node

    def _null_test(self, node: ast.Binary) -> ast.CExpr:
        """``e == NULL`` / ``e != NULL`` as a checkable boolean."""
        operand = node.right if _is_null(node.left) else node.left
        if self._is_value_expr(operand):
            test: ast.CExpr = _call(
                "__pyext_is_null", (self.expr(operand),), node.span
            )
            if node.op == "!=":
                test = ast.Unary("!", test, node.span)
            return test
        rewritten = self.expr(operand)
        if node.op == "==":
            return ast.Unary("!", rewritten, node.span)
        return rewritten

    def _rewrite_call(self, call: ast.Call) -> ast.CExpr:
        if isinstance(call.func, ast.Name) and call.func.ident in _CALL_REWRITES:
            new_name, keep = _CALL_REWRITES[call.func.ident]
            kept = tuple(self.expr(a) for a in call.args[:keep])
            return _call(new_name, kept, call.span)
        return ast.Call(
            func=self.expr(call.func),
            args=tuple(self.expr(a) for a in call.args),
            span=call.span,
        )

    # -- conditions --------------------------------------------------------

    def cond(self, node: ast.CExpr) -> ast.CExpr:
        """A condition position: truthiness of a value means 'not NULL'."""
        if isinstance(node, ast.Unary) and node.op == "!":
            inner = node.operand
            if self._is_value_expr(inner):
                return _call("__pyext_is_null", (self.expr(inner),), node.span)
            return ast.Unary("!", self.cond(inner), node.span)
        if isinstance(node, ast.Binary) and node.op in ("&&", "||"):
            return ast.Binary(
                node.op, self.cond(node.left), self.cond(node.right), node.span
            )
        if self._is_value_expr(node):
            return ast.Unary(
                "!", _call("__pyext_is_null", (self.expr(node),), node.span), node.span
            )
        return self.expr(node)

    # -- statements --------------------------------------------------------

    def stmt(self, node: ast.CStmtOrDecl) -> ast.CStmtOrDecl:
        if isinstance(node, ast.Declaration):
            self.var_types[node.name] = node.ctype
            init = node.init
            if init is not None and not isinstance(init, ast.InitList):
                init = self.expr(init)
            return ast.Declaration(node.name, node.ctype, init, node.span)
        if isinstance(node, ast.Block):
            return ast.Block([self.stmt(s) for s in node.items], node.span)
        if isinstance(node, ast.ExprStmt):
            expr = node.expr
            if isinstance(expr, ast.Name) and expr.ident in RETURN_MACROS:
                return ast.ReturnStmt(
                    value=_call("__pyext_none", (), node.span), span=node.span
                )
            if (
                isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Name)
                and expr.func.ident in RETURN_MACROS
            ):
                return ast.ReturnStmt(
                    value=_call("__pyext_none", (), node.span), span=node.span
                )
            return ast.ExprStmt(self.expr(expr), node.span)
        if isinstance(node, ast.IfStmt):
            return ast.IfStmt(
                self.cond(node.cond),
                self.stmt(node.then),
                self.stmt(node.other) if node.other is not None else None,
                node.span,
            )
        if isinstance(node, ast.WhileStmt):
            return ast.WhileStmt(self.cond(node.cond), self.stmt(node.body), node.span)
        if isinstance(node, ast.DoWhileStmt):
            return ast.DoWhileStmt(
                self.stmt(node.body), self.cond(node.cond), node.span
            )
        if isinstance(node, ast.ForStmt):
            return ast.ForStmt(
                self.stmt(node.init) if node.init is not None else None,
                self.cond(node.cond) if node.cond is not None else None,
                self.expr(node.step) if node.step is not None else None,
                self.stmt(node.body),
                node.span,
            )
        if isinstance(node, ast.SwitchStmt):
            return ast.SwitchStmt(
                self.expr(node.scrutinee),
                [
                    ast.SwitchCase(
                        case.value,
                        [self.stmt(item) for item in case.body],
                        case.span,
                    )
                    for case in node.cases
                ],
                node.span,
            )
        if isinstance(node, ast.ReturnStmt):
            value = self.expr(node.value) if node.value is not None else None
            return ast.ReturnStmt(value, node.span)
        if isinstance(node, ast.LabeledStmt):
            rewritten = self.stmt(node.stmt)
            assert not isinstance(rewritten, ast.Declaration)
            return ast.LabeledStmt(node.label, rewritten, node.span)
        return node


def rewrite_function(fn: ast.FunctionDef) -> ast.FunctionDef:
    body: Optional[ast.Block] = None
    if fn.body is not None:
        rewriter = _FunctionRewriter(fn)
        rewritten = rewriter.stmt(fn.body)
        assert isinstance(rewritten, ast.Block)
        body = rewritten
    return ast.FunctionDef(
        name=fn.name,
        return_type=fn.return_type,
        params=list(fn.params),
        body=body,
        span=fn.span,
        polymorphic=fn.polymorphic,
    )


def rewrite_unit(unit: ast.TranslationUnit) -> ast.TranslationUnit:
    """A rewritten copy of the unit; the input is left untouched."""
    return ast.TranslationUnit(
        functions=[rewrite_function(fn) for fn in unit.functions],
        globals=list(unit.globals),
        filename=unit.filename,
    )
