"""The reference-count discipline: pyext's analogue of ``CAMLprotect``.

In OCaml glue the danger is a heap pointer *live across* a collection
without being registered; in CPython glue the danger is a reference count
that disagrees with how many pointers exist.  The shapes line up:

==========================  =====================================
OCaml dialect               pyext dialect
==========================  =====================================
unprotected live value      owned reference never ``Py_DECREF``-ed
``CAMLprotect``             ``Py_INCREF`` (taking ownership)
use after ``CAMLreturn``    use after ``Py_DECREF``
==========================  =====================================

The pass is a conservative abstract interpretation over the surface AST.
Every ``PyObject *`` variable carries one of five states — ``borrowed``
(parameters, ``PyTuple_GetItem``-style results, the singletons), ``owned``
(results of new-reference constructors), ``released`` (after
``Py_DECREF``), ``transferred`` (given to a reference-stealing call), or
``unknown`` — and branches join pointwise, with disagreement collapsing
to ``unknown`` so reports only fire on facts that hold on *every* path:

* use of a ``released`` variable  → ``PY_USE_AFTER_DECREF`` (error)
* ``owned`` at a function exit, or overwritten → ``PY_REF_LEAK`` (error)
* ``borrowed`` escaping (returned / stolen) → ``PY_BORROWED_ESCAPE``
  (warning — the paper's "questionable practice" column)

``if (x == NULL)``-style tests refine the state (a null can be neither
leaked nor used), which is what keeps the ubiquitous allocation-failure
early-return idiom report-free.
"""

from __future__ import annotations

from typing import Optional

from ..cfront import ast
from ..core.srctypes import CSrcValue
from ..diagnostics import Diagnostic, Kind
from ..source import Span
from .runtime import (
    BORROWED_REF_FUNCTIONS,
    DECREF_FUNCTIONS,
    GLOBAL_VALUES,
    INCREF_FUNCTIONS,
    NEW_REF_FUNCTIONS,
    RETURN_MACROS,
    STEALS_REFERENCE,
)

BORROWED = "borrowed"
OWNED = "owned"
RELEASED = "released"
TRANSFERRED = "transferred"
UNKNOWN = "unknown"

State = dict[str, str]

#: parser entry points whose ``O`` outputs hand back borrowed references
_PARSE_FUNCTIONS = {"PyArg_ParseTuple", "PyArg_ParseTupleAndKeywords"}


def _is_null(expr: ast.CExpr) -> bool:
    return (isinstance(expr, ast.Name) and expr.ident == "NULL") or (
        isinstance(expr, ast.Num) and expr.value == 0
    )


class RefcountChecker:
    """Check one function body; collect diagnostics."""

    def __init__(self, fn: ast.FunctionDef):
        self.fn = fn
        self.diags: list[Diagnostic] = []
        self.acquired_at: dict[str, Span] = {}
        self._reported_use: set[str] = set()
        self._reported_leak: set[str] = set()

    # -- reporting ---------------------------------------------------------

    def _report(self, kind: Kind, span: Span, message: str) -> None:
        self.diags.append(
            Diagnostic(kind=kind, span=span, message=message, function=self.fn.name)
        )

    def _use_after(self, name: str, span: Span, how: str) -> None:
        if name in self._reported_use:
            return
        self._reported_use.add(name)
        self._report(
            Kind.PY_USE_AFTER_DECREF,
            span,
            f"`{name}` is {how} after Py_DECREF already released it",
        )

    def _leak(self, name: str, span: Span, why: str) -> None:
        if name in self._reported_leak:
            return
        self._reported_leak.add(name)
        where = self.acquired_at.get(name)
        origin = f" (acquired at {where})" if where is not None else ""
        self._report(
            Kind.PY_REF_LEAK,
            span,
            f"new reference held by `{name}`{origin} {why}; Py_DECREF is "
            "missing",
        )

    # -- expression classification ----------------------------------------

    def _classify_rhs(self, expr: ast.CExpr, state: State) -> str:
        """State of a right-hand side; MOVES ownership out of an aliased
        source variable (one object, one owner — linear-type style)."""
        while isinstance(expr, ast.Cast):
            expr = expr.operand
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            callee = expr.func.ident
            if callee in NEW_REF_FUNCTIONS:
                return OWNED
            if callee in BORROWED_REF_FUNCTIONS:
                return BORROWED
            return UNKNOWN
        if isinstance(expr, ast.Name):
            if expr.ident in GLOBAL_VALUES:
                return BORROWED
            source = state.get(expr.ident)
            if source == OWNED:
                # `y = x`: the single owned reference travels to the alias
                state[expr.ident] = TRANSFERRED
                return OWNED
            if source in (BORROWED, RELEASED):
                return source
        return UNKNOWN

    def _check_uses(self, expr: Optional[ast.CExpr], state: State, span: Span) -> None:
        """Flag reads of released variables anywhere inside ``expr``."""
        if expr is None:
            return
        if isinstance(expr, ast.Name):
            if state.get(expr.ident) == RELEASED:
                self._use_after(expr.ident, span, "used")
            return
        if isinstance(expr, ast.Call):
            for arg in expr.args:
                self._check_uses(arg, state, span)
            return
        if isinstance(expr, ast.Unary):
            self._check_uses(expr.operand, state, span)
        elif isinstance(expr, ast.Binary):
            self._check_uses(expr.left, state, span)
            self._check_uses(expr.right, state, span)
        elif isinstance(expr, ast.Conditional):
            self._check_uses(expr.cond, state, span)
            self._check_uses(expr.then, state, span)
            self._check_uses(expr.other, state, span)
        elif isinstance(expr, ast.Cast):
            self._check_uses(expr.operand, state, span)
        elif isinstance(expr, ast.Index):
            self._check_uses(expr.base, state, span)
            self._check_uses(expr.index, state, span)
        elif isinstance(expr, ast.Member):
            self._check_uses(expr.base, state, span)
        elif isinstance(expr, ast.Assign):
            self._check_uses(expr.value, state, span)
        elif isinstance(expr, ast.IncDec):
            self._check_uses(expr.target, state, span)

    # -- effects of calls ---------------------------------------------------

    def _apply_call(self, call: ast.Call, state: State, span: Span) -> bool:
        """Interpret a call's reference effects; True if fully handled."""
        if not isinstance(call.func, ast.Name):
            return False
        callee = call.func.ident
        args = call.args
        if callee in INCREF_FUNCTIONS and len(args) == 1:
            if isinstance(args[0], ast.Name):
                name = args[0].ident
                if state.get(name) == RELEASED:
                    self._use_after(name, span, "Py_INCREF-ed")
                    state[name] = UNKNOWN
                elif name in state or name in GLOBAL_VALUES:
                    state[name] = OWNED
                    self.acquired_at.setdefault(name, span)
            return True
        if callee in DECREF_FUNCTIONS and len(args) == 1:
            if isinstance(args[0], ast.Name):
                name = args[0].ident
                if state.get(name) == RELEASED:
                    self._use_after(name, span, f"{callee}-ed again")
                elif name in state:
                    state[name] = RELEASED
            return True
        if callee in STEALS_REFERENCE:
            index = STEALS_REFERENCE[callee]
            self._check_uses(call, state, span)
            if index < len(args) and isinstance(args[index], ast.Name):
                name = args[index].ident
                if state.get(name) == OWNED:
                    state[name] = TRANSFERRED
                elif state.get(name) == BORROWED:
                    self._report(
                        Kind.PY_BORROWED_ESCAPE,
                        span,
                        f"`{callee}` steals a reference but `{name}` is "
                        "borrowed; Py_INCREF it first",
                    )
                    state[name] = UNKNOWN
            return True
        if callee in _PARSE_FUNCTIONS:
            self._check_uses(call, state, span)
            # "O"-converted outputs are borrowed references
            for arg in args:
                if (
                    isinstance(arg, ast.Unary)
                    and arg.op == "&"
                    and isinstance(arg.operand, ast.Name)
                    and arg.operand.ident in state
                ):
                    state[arg.operand.ident] = BORROWED
            return True
        return False

    def _eval_expr(self, expr: Optional[ast.CExpr], state: State, span: Span) -> None:
        """Evaluate an expression for its reference effects *and* its uses.

        Conditions and expression statements routinely bury the effectful
        call — ``if (!PyArg_ParseTuple(...))`` is the canonical idiom — so
        calls found anywhere in the tree get their effects applied.
        """
        if expr is None:
            return
        if isinstance(expr, ast.Call):
            if not self._apply_call(expr, state, span):
                self._check_uses(expr, state, span)
            return
        if isinstance(expr, ast.Unary):
            self._eval_expr(expr.operand, state, span)
        elif isinstance(expr, ast.Binary):
            self._eval_expr(expr.left, state, span)
            self._eval_expr(expr.right, state, span)
        elif isinstance(expr, ast.Conditional):
            self._eval_expr(expr.cond, state, span)
            self._eval_expr(expr.then, state, span)
            self._eval_expr(expr.other, state, span)
        elif isinstance(expr, ast.Cast):
            self._eval_expr(expr.operand, state, span)
        elif isinstance(expr, ast.Index):
            self._eval_expr(expr.base, state, span)
            self._eval_expr(expr.index, state, span)
        elif isinstance(expr, ast.Member):
            self._eval_expr(expr.base, state, span)
        elif isinstance(expr, ast.IncDec):
            self._eval_expr(expr.target, state, span)
        elif isinstance(expr, ast.Assign):
            self._apply_assign(expr, state, span)
        else:
            self._check_uses(expr, state, span)

    # -- assignments --------------------------------------------------------

    def _apply_assign(self, node: ast.Assign, state: State, span: Span) -> None:
        self._check_uses(node.value, state, span)
        target = node.target
        if isinstance(target, ast.Name) and target.ident in state:
            name = target.ident
            if state[name] == OWNED:
                self._leak(name, span, "is overwritten while still owned")
            if _is_null(node.value):
                state[name] = UNKNOWN
            else:
                state[name] = self._classify_rhs(node.value, state)
            if state[name] == OWNED:
                self.acquired_at[name] = span
            return
        # store into a container/field: an owned reference escapes there
        if isinstance(node.value, ast.Name) and state.get(node.value.ident) == OWNED:
            state[node.value.ident] = TRANSFERRED
        self._check_uses(target, state, span)

    # -- exits --------------------------------------------------------------

    def _exit_check(self, state: State, span: Span, returned: Optional[str]) -> None:
        for name, var_state in sorted(state.items()):
            if name == returned:
                continue
            if var_state == OWNED:
                self._leak(name, span, "is still owned at this return")

    def _apply_return(
        self, value: Optional[ast.CExpr], state: State, span: Span
    ) -> None:
        returned: Optional[str] = None
        if value is not None:
            self._check_uses(value, state, span)
            while isinstance(value, ast.Cast):
                value = value.operand  # `return (PyObject *)x;` returns x
            if isinstance(value, ast.Name):
                returned = value.ident
                ret_state = state.get(
                    returned, BORROWED if returned in GLOBAL_VALUES else None
                )
                if ret_state == BORROWED:
                    self._report(
                        Kind.PY_BORROWED_ESCAPE,
                        span,
                        f"returning borrowed reference `{returned}` without "
                        "Py_INCREF; the caller will over-release it",
                    )
        self._exit_check(state, span, returned)

    # -- condition refinement ----------------------------------------------

    @staticmethod
    def _null_test(cond: ast.CExpr) -> Optional[tuple[str, bool]]:
        """``(name, is_null_in_then)`` for recognizable null tests."""
        if isinstance(cond, ast.Unary) and cond.op == "!":
            inner = cond.operand
            if isinstance(inner, ast.Name):
                return (inner.ident, True)
            return None
        if isinstance(cond, ast.Binary) and cond.op in ("==", "!="):
            for probe, other in ((cond.left, cond.right), (cond.right, cond.left)):
                if isinstance(probe, ast.Name) and _is_null(other):
                    return (probe.ident, cond.op == "==")
        if isinstance(cond, ast.Name):
            return (cond.ident, False)
        return None

    # -- statement interpretation -------------------------------------------

    @staticmethod
    def _join(left: State, right: State) -> State:
        joined: State = {}
        for name in set(left) | set(right):
            a, b = left.get(name), right.get(name)
            if a == b and a is not None:
                joined[name] = a
            elif a is None:
                joined[name] = b  # declared in one branch only
            elif b is None:
                joined[name] = a
            else:
                joined[name] = UNKNOWN
        return joined

    def _exec_stmt(self, stmt: ast.CStmtOrDecl, state: State) -> bool:
        """Interpret one statement; True when the path terminated."""
        if isinstance(stmt, ast.Declaration):
            if not isinstance(stmt.ctype, CSrcValue):
                if stmt.init is not None and not isinstance(stmt.init, ast.InitList):
                    self._check_uses(stmt.init, state, stmt.span)
                return False
            if stmt.init is None or _is_null(stmt.init):
                state[stmt.name] = UNKNOWN
            else:
                self._check_uses(stmt.init, state, stmt.span)
                state[stmt.name] = self._classify_rhs(stmt.init, state)
                if state[stmt.name] == OWNED:
                    self.acquired_at[stmt.name] = stmt.span
            return False
        if isinstance(stmt, ast.Block):
            for item in stmt.items:
                if self._exec_stmt(item, state):
                    return True
            return False
        if isinstance(stmt, ast.ExprStmt):
            return self._exec_expr_stmt(stmt, state)
        if isinstance(stmt, ast.IfStmt):
            return self._exec_if(stmt, state)
        if isinstance(stmt, (ast.WhileStmt, ast.DoWhileStmt)):
            self._eval_expr(stmt.cond, state, stmt.span)
            body_state = dict(state)
            self._exec_stmt(stmt.body, body_state)
            merged = self._join(state, body_state)  # zero or more iterations
            state.clear()
            state.update(merged)
            return False
        if isinstance(stmt, ast.ForStmt):
            if stmt.init is not None:
                self._exec_stmt(stmt.init, state)
            if stmt.cond is not None:
                self._eval_expr(stmt.cond, state, stmt.span)
            body_state = dict(state)
            self._exec_stmt(stmt.body, body_state)
            if stmt.step is not None:
                self._eval_expr(stmt.step, body_state, stmt.span)
            merged = self._join(state, body_state)
            state.clear()
            state.update(merged)
            return False
        if isinstance(stmt, ast.SwitchStmt):
            self._eval_expr(stmt.scrutinee, state, stmt.span)
            outcomes: list[State] = []
            for case in stmt.cases:
                case_state = dict(state)
                terminated = False
                for item in case.body:
                    if self._exec_stmt(item, case_state):
                        terminated = True
                        break
                if not terminated:
                    outcomes.append(case_state)
            outcomes.append(state)  # no case may match
            merged = outcomes[0]
            for outcome in outcomes[1:]:
                merged = self._join(merged, outcome)
            state.clear()
            state.update(merged)
            return False
        if isinstance(stmt, ast.ReturnStmt):
            self._apply_return(stmt.value, state, stmt.span)
            return True
        if isinstance(stmt, ast.LabeledStmt):
            return self._exec_stmt(stmt.stmt, state)
        # goto/break/continue/empty: no reference effects modelled
        return False

    def _exec_expr_stmt(self, stmt: ast.ExprStmt, state: State) -> bool:
        expr = stmt.expr
        if isinstance(expr, ast.Name) and expr.ident in RETURN_MACROS:
            # Py_RETURN_NONE ≡ Py_INCREF(Py_None); return Py_None;
            self._exit_check(state, stmt.span, returned=None)
            return True
        if isinstance(expr, ast.Assign):
            self._apply_assign(expr, state, stmt.span)
            return False
        self._eval_expr(expr, state, stmt.span)
        return False

    def _exec_if(self, stmt: ast.IfStmt, state: State) -> bool:
        self._eval_expr(stmt.cond, state, stmt.span)
        then_state = dict(state)
        else_state = dict(state)
        refined = self._null_test(stmt.cond)
        if refined is not None:
            name, null_in_then = refined
            if name in then_state:
                (then_state if null_in_then else else_state)[name] = UNKNOWN
        then_done = self._exec_stmt(stmt.then, then_state)
        else_done = (
            self._exec_stmt(stmt.other, else_state)
            if stmt.other is not None
            else False
        )
        if then_done and else_done:
            return True
        if then_done:
            merged = else_state
        elif else_done:
            merged = then_state
        else:
            merged = self._join(then_state, else_state)
        state.clear()
        state.update(merged)
        return False

    # -- entry point ---------------------------------------------------------

    def run(self) -> list[Diagnostic]:
        if self.fn.body is None:
            return []
        state: State = {
            name: BORROWED
            for name, ctype in self.fn.params
            if isinstance(ctype, CSrcValue)
        }
        terminated = self._exec_stmt(self.fn.body, state)
        if not terminated:
            # falling off the end is an exit too
            self._exit_check(state, self.fn.span, returned=None)
        return self.diags


def check_unit(unit: ast.TranslationUnit) -> list[Diagnostic]:
    """Reference-discipline diagnostics for every function in the unit."""
    diags: list[Diagnostic] = []
    for fn in unit.functions:
        diags.extend(RefcountChecker(fn).run())
    return diags
