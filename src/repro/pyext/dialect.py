"""The CPython extension-module boundary as a ``BoundaryDialect``.

Phase one reads the boundary contract out of the C sources themselves
(``PyMethodDef`` tables → ``Γ_I``; there is no separate host-language
input).  Phase two runs three passes over each unit:

1. the shared Figure 6/7 inference, over the rewritten AST, seeded with
   the CPython runtime table — this catches calling-convention arity and
   type clashes exactly as the OCaml dialect catches ``external``
   mismatches;
2. the format-string checker (:mod:`repro.pyext.formats`);
3. the reference-count discipline (:mod:`repro.pyext.refcount`).

Their diagnostics merge into one :class:`AnalysisReport`, so batch
tallies, caching, and rendering need no dialect-specific code.
"""

from __future__ import annotations

from ..boundary import DialectSpec, register_dialect
from ..cfront.ast import TranslationUnit
from ..cfront.ir import ProgramIR
from ..cfront.lexer import scan_includes
from ..cfront.lower import lower_unit
from ..cfront.parser import parse_c
from ..core.checker import AnalysisReport, Checker, InitialEnv
from ..core.environment import Entry
from ..engine.jobs import CheckRequest
from ..linker.extract import function_row, summarize_units
from ..linker.summary import InterfaceSummary, SymbolRow
from ..source import SourceFile
from ..telemetry import span as _tspan
from . import formats, methods, refcount, runtime
from .rewrite import rewrite_unit


class PyExtDialect:
    """CPython C-API glue, checked with the paper's machinery."""

    name = "pyext"
    host_suffixes: tuple[str, ...] = ()
    unit_suffixes = (".c", ".h")
    #: only .c files are scanned as standalone units; headers reach
    #: the analysis as dependencies of their includers
    corpus_unit_suffixes = (".c",)

    # -- seeds ---------------------------------------------------------------

    def builtin_entries(self) -> dict[str, Entry]:
        return runtime.builtin_entries()

    def polymorphic_builtins(self) -> frozenset[str]:
        return runtime.POLYMORPHIC_BUILTINS

    def global_entries(self) -> dict[str, Entry]:
        return runtime.global_entries()

    def alloc_result_tags(self) -> dict[str, int | str]:
        # Python objects are not representational blocks; no allocator
        # produces a known-tag value
        return {}

    # -- phases --------------------------------------------------------------

    def parse(self, source: SourceFile) -> TranslationUnit:
        return parse_c(source, runtime.parse_hints())

    def initial_env(self, request: CheckRequest) -> InitialEnv:
        units = [self.parse(source) for source in request.c_sources]
        return methods.build_initial_env(units)

    def analyze(self, request: CheckRequest) -> AnalysisReport:
        units = [self.parse(source) for source in request.c_sources]
        with _tspan("initial-env", cat="phase"):
            initial_env = methods.build_initial_env(units)

        with _tspan("lower", cat="phase"):
            return_types = runtime.lowering_return_types()
            program = ProgramIR()
            for unit in units:
                program = program.merge(
                    lower_unit(rewrite_unit(unit), extra_returns=return_types)
                )
        report = Checker(
            program, initial_env, request.options, dialect=self
        ).run()

        # the dialect-specific passes read the *original* AST: format
        # strings and refcount operations are erased by the rewrite
        with _tspan("dialect-passes", cat="phase"):
            for unit in units:
                report.diagnostics.extend(formats.check_unit(unit))
                report.diagnostics.extend(refcount.check_unit(unit))
        with _tspan("summarize", cat="phase"):
            report.summary = self.summarize(request, units).to_dict()
        return report

    def summarize(self, request: CheckRequest, units) -> InterfaceSummary:
        """Link-relevant slice: C exports/externs plus every
        ``PyMethodDef`` row and ``PyInit_*`` module entry point."""
        summary = InterfaceSummary(unit=request.name, dialect=self.name)
        ignore = frozenset(runtime.builtin_entries()) | frozenset(
            runtime.global_entries()
        )
        summarize_units(summary, units, ignore=ignore)
        for unit in units:
            for entry in methods.method_table_entries(unit):
                summary.registrations.append(
                    SymbolRow(
                        symbol=entry.py_name,
                        file=entry.span.filename,
                        line=entry.span.start.line,
                        detail=entry.c_name,
                    )
                )
            for fn in unit.functions:
                if fn.body is not None and fn.name.startswith("PyInit_"):
                    summary.registrations.append(
                        function_row(fn, detail=fn.name)
                    )
        return summary

    def unit_dependencies(self, request: CheckRequest) -> tuple[str, ...]:
        """Quoted includes only: the boundary contract (``PyMethodDef``
        tables) lives in the C sources themselves, so there is no host
        side to depend on."""
        deps: dict[str, None] = {}
        for source in request.c_sources:
            for header in scan_includes(source.text):
                deps.setdefault(header)
        return tuple(deps)


PYEXT_DIALECT = register_dialect(
    PyExtDialect(),
    DialectSpec(
        name="pyext",
        host_suffixes=(),
        unit_suffixes=(".c", ".h"),
        corpus_unit_suffixes=(".c",),
        example_dir="examples/pyext",
        link_example_dir="examples/link/pyext",
        bench_module="benchmarks/bench_pyext.py",
    ),
)
