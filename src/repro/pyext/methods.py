"""Phase one for the pyext dialect: ``PyMethodDef`` tables become ``Γ_I``.

An OCaml ``external`` tells the checker which C function the host will
call and at what type; a CPython method table does exactly the same job::

    static PyMethodDef SpamMethods[] = {
        {"add", spam_add, METH_VARARGS, "Add two integers."},
        {NULL, NULL, 0, NULL}
    };

Each row fixes the C function's calling convention from its flags —
``METH_VARARGS`` means ``PyObject *f(PyObject *self, PyObject *args)``,
``METH_KEYWORDS`` adds the ``kwargs`` parameter, and so on.  We translate
every row into a :class:`~repro.core.types.CFun` over fresh value
variables and seed the initial environment with it; the shared (Fun Defn)
rule then unifies the actual definition against it, so a method defined
with the wrong arity is caught by the very same check that catches an
``external`` / C-stub mismatch in the OCaml dialect.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cfront import ast
from ..core.checker import InitialEnv
from ..core.srctypes import CSrcPtr, CSrcStruct, CSrcType
from ..core.types import C_INT, CFun, CPtr, CType, CValue, NOGC, fresh_mt
from ..source import DUMMY_SPAN, Span


@dataclass(frozen=True)
class MethodDefEntry:
    """One parsed ``PyMethodDef`` row."""

    py_name: str
    c_name: str
    flags: tuple[str, ...]
    span: Span = DUMMY_SPAN

    def param_types(self) -> tuple[CType, ...]:
        """The C parameter list the calling convention dictates, over
        fresh value variables."""
        if "METH_FASTCALL" in self.flags:
            # (self, PyObject *const *args, Py_ssize_t nargs[, kwnames])
            params: list[CType] = [
                CValue(fresh_mt()),
                CPtr(CValue(fresh_mt())),
                C_INT,
            ]
            if "METH_KEYWORDS" in self.flags:
                params.append(CValue(fresh_mt()))
            return tuple(params)
        arity = 3 if "METH_KEYWORDS" in self.flags else 2
        # METH_NOARGS still receives (self, ignored); METH_O receives
        # (self, arg); METH_VARARGS receives (self, args)
        return tuple(CValue(fresh_mt()) for _ in range(arity))

    @property
    def arity(self) -> int:
        """Number of C parameters the calling convention dictates."""
        return len(self.param_types())


def _is_method_table_type(ctype: CSrcType) -> bool:
    node = ctype
    while isinstance(node, CSrcPtr):
        node = node.target
    return isinstance(node, CSrcStruct) and node.name == "PyMethodDef"


def _flag_names(expr: ast.CExpr) -> tuple[str, ...]:
    """Collect identifiers from a ``METH_A | METH_B`` flags expression."""
    if isinstance(expr, ast.Name):
        return (expr.ident,)
    if isinstance(expr, ast.Binary) and expr.op == "|":
        return _flag_names(expr.left) + _flag_names(expr.right)
    return ()


def _row_entry(row: ast.InitList) -> MethodDefEntry | None:
    """Decode one table row; ``None`` for sentinels and designated forms
    we cannot read."""
    by_field: dict[str, ast.CExpr] = {}
    positional: list[ast.CExpr] = []
    for item in row.items:
        if item.field_name is not None:
            by_field[item.field_name] = item.value
        else:
            positional.append(item.value)

    def member(field: str, index: int) -> ast.CExpr | None:
        if field in by_field:
            return by_field[field]
        if index < len(positional):
            return positional[index]
        return None

    name_expr = member("ml_name", 0)
    func_expr = member("ml_meth", 1)
    flags_expr = member("ml_flags", 2)
    if not isinstance(name_expr, ast.Str) or not isinstance(func_expr, ast.Name):
        return None  # the {NULL, NULL, 0, NULL} sentinel, or unreadable
    flags = _flag_names(flags_expr) if flags_expr is not None else ()
    return MethodDefEntry(
        py_name=name_expr.value,
        c_name=func_expr.ident,
        flags=flags,
        span=name_expr.span,
    )


def method_table_entries(unit: ast.TranslationUnit) -> list[MethodDefEntry]:
    """Every readable row of every ``PyMethodDef`` table in the unit."""
    entries: list[MethodDefEntry] = []
    for decl in unit.globals:
        if not _is_method_table_type(decl.ctype):
            continue
        if not isinstance(decl.init, ast.InitList):
            continue
        for item in decl.init.items:
            if isinstance(item.value, ast.InitList):
                entry = _row_entry(item.value)
                if entry is not None:
                    entries.append(entry)
    return entries


def build_initial_env(units: list[ast.TranslationUnit]) -> InitialEnv:
    """``Γ_I`` for a pyext unit: one entry per method-table row.

    Effects are ``nogc`` (see :mod:`repro.pyext.runtime`); parameters and
    result are fresh ``α value`` — the interpreter can pass any object, so
    nothing stronger is known until the body commits to conversions.
    """
    env = InitialEnv()
    for unit in units:
        for entry in method_table_entries(unit):
            env.functions[entry.c_name] = CFun(
                params=entry.param_types(),
                result=CValue(fresh_mt()),
                effect=NOGC,
            )
            env.spans[entry.c_name] = entry.span
    return env
