"""CPython extension-module front-end (the ``pyext`` boundary dialect).

The OCaml FFI and the CPython C API are the same problem wearing
different macros: host values cross into C as a uniform word
(``value`` / ``PyObject *``), the host hands C an interface contract
(``external`` declarations / ``PyMethodDef`` tables), and a manual
discipline protects heap objects from the collector
(``CAMLprotect`` / ``Py_INCREF``-``Py_DECREF``).  This package maps the
CPython side of each correspondence onto the shared inference:

* :mod:`repro.pyext.runtime` — the runtime entry-point table and parse
  hints (``PyObject *`` parses as the value type);
* :mod:`repro.pyext.methods` — ``PyMethodDef`` tables become ``Γ_I``;
* :mod:`repro.pyext.formats` — ``PyArg_ParseTuple`` / ``Py_BuildValue``
  format strings checked against the supplied C arguments;
* :mod:`repro.pyext.refcount` — borrowed-vs-new reference discipline
  (leaks, use-after-decref, borrowed escapes);
* :mod:`repro.pyext.rewrite` — normalizes CPython idioms (``NULL``,
  ``Py_RETURN_NONE``, varargs parsers) into the Figure 5 subset;
* :mod:`repro.pyext.dialect` — ties it all together as a
  :class:`repro.boundary.BoundaryDialect`.
"""

from .dialect import PYEXT_DIALECT, PyExtDialect

__all__ = ["PYEXT_DIALECT", "PyExtDialect"]
