"""Command-line interface: the two §5.1 tools behind one driver.

Usage::

    mlffi-check check glue.ml stubs.c [more .ml/.c files ...]
    mlffi-check check --dialect pyext extension_module.c
    mlffi-check check --no-flow-sensitive --no-gc-effects stubs.c
    mlffi-check batch src/glue --jobs 4 --format json
    mlffi-check batch --dialect pyext src/ext --jobs 4
    mlffi-check bench [--program lablgtk-2.2.0]
    mlffi-check example

``check`` analyzes a multi-lingual project and prints the diagnostics plus
the Figure 9 style tally; the exit status is the number of errors (capped
at 125 so it stays a valid exit code).  ``batch`` sweeps a directory tree —
every ``.ml``/``.mli`` feeds the shared type repository, every ``.c`` is an
independently analyzed (and content-hash cached) translation unit fanned
out across a worker pool.  ``bench`` regenerates the Figure 9 table from
the synthesized suite.  ``example`` runs the paper's Figure 2 program as a
smoke test.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from .api import Project
from .boundary import available_dialects, get_dialect
from .core.exprs import Options
from .engine import DEFAULT_CACHE_DIR, NullCache, ResultCache
from .source import SourceFile


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mlffi-check",
        description="Multi-lingual type inference for the OCaml-to-C FFI "
        "(reproduction of Furr & Foster, PLDI 2005)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="analyze host + C sources")
    check.add_argument(
        "files",
        nargs="+",
        help="host sources (.ml/.mli for the ocaml dialect) feed the type "
        "repository; .c files are analyzed",
    )
    check.add_argument(
        "--dialect",
        choices=available_dialects(),
        default="ocaml",
        help="boundary dialect to check (default: ocaml)",
    )
    check.add_argument(
        "--no-flow-sensitive",
        action="store_true",
        help="disable B/I/T dataflow (ablation)",
    )
    check.add_argument(
        "--no-gc-effects",
        action="store_true",
        help="disable GC effect checking (ablation)",
    )
    check.add_argument(
        "--quiet", action="store_true", help="print only the summary line"
    )
    check.add_argument(
        "--signatures",
        action="store_true",
        help="also print the inferred multi-lingual signatures",
    )

    batch = sub.add_parser(
        "batch",
        help="analyze every translation unit under a directory, in parallel "
        "and with content-hash caching",
    )
    batch.add_argument(
        "directory",
        help="root to scan: host sources feed the shared type repository, "
        "each .c file becomes one translation unit",
    )
    batch.add_argument(
        "--dialect",
        choices=available_dialects(),
        default="ocaml",
        help="boundary dialect to check (default: ocaml)",
    )
    batch.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (0 = auto-detect; default: 1, sequential)",
    )
    batch.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"result cache location (default: {DEFAULT_CACHE_DIR})",
    )
    batch.add_argument(
        "--no-cache",
        action="store_true",
        help="analyze every unit from scratch and store nothing",
    )
    batch.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (json is machine-readable, one report object)",
    )
    batch.add_argument(
        "--no-flow-sensitive",
        action="store_true",
        help="disable B/I/T dataflow (ablation)",
    )
    batch.add_argument(
        "--no-gc-effects",
        action="store_true",
        help="disable GC effect checking (ablation)",
    )

    bench = sub.add_parser("bench", help="regenerate the Figure 9 table")
    bench.add_argument(
        "--program", help="run a single benchmark by name", default=None
    )
    bench.add_argument(
        "--compare",
        action="store_true",
        help="print the paper-vs-measured comparison table",
    )

    sub.add_parser("example", help="run the paper's Figure 2 example")
    return parser


def _run_check(args: argparse.Namespace) -> int:
    dialect = get_dialect(args.dialect)
    project = Project(dialect=dialect.name)
    for name in args.files:
        path = Path(name)
        if not path.exists():
            print(f"error: no such file: {name}", file=sys.stderr)
            return 125
        source = SourceFile(str(path), path.read_text())
        if path.suffix in dialect.host_suffixes:
            project.add_ocaml(source)
        elif path.suffix in dialect.unit_suffixes:
            project.add_c(source)
        else:
            wanted = "/".join(dialect.host_suffixes + dialect.unit_suffixes)
            print(
                f"error: unknown extension on {name} for dialect "
                f"{dialect.name} (want {wanted})",
                file=sys.stderr,
            )
            return 125
    options = Options(
        flow_sensitive=not args.no_flow_sensitive,
        gc_effects=not args.no_gc_effects,
    )
    report = project.analyze(options)
    if args.quiet:
        print(report.render().splitlines()[-1])
    else:
        print(report.render())
    if args.signatures and not args.quiet:
        print()
        print("inferred signatures:")
        for name in sorted(report.signatures):
            print("  " + report.signatures[name])
    return min(len(report.errors), 125)


def _run_batch(args: argparse.Namespace) -> int:
    root = Path(args.directory)
    if not root.is_dir():
        print(f"error: no such directory: {args.directory}", file=sys.stderr)
        return 125
    project = Project.from_directory(root, dialect=args.dialect)
    if not project.c_sources:
        print(
            f"error: no .c translation units under {args.directory}",
            file=sys.stderr,
        )
        return 125
    options = Options(
        flow_sensitive=not args.no_flow_sensitive,
        gc_effects=not args.no_gc_effects,
    )
    cache = NullCache() if args.no_cache else ResultCache(args.cache_dir)
    report = project.analyze_batch(options, jobs=args.jobs, cache=cache)
    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    if report.failures:
        return 125
    return min(report.tally()["errors"], 125)


def _run_bench(args: argparse.Namespace) -> int:
    from .bench.report import comparison_table, figure9_table
    from .bench.runner import SuiteResult, run_benchmark, run_suite
    from .bench.specs import SUITE, spec_by_name

    if args.program is not None:
        try:
            spec = spec_by_name(args.program)
        except KeyError:
            names = ", ".join(s.name for s in SUITE)
            print(
                f"error: unknown benchmark `{args.program}` (one of: {names})",
                file=sys.stderr,
            )
            return 125
        suite = SuiteResult(results=[run_benchmark(spec)])
    else:
        suite = run_suite()
    print(figure9_table(suite))
    if args.compare:
        print()
        print(comparison_table(suite))
    return 0


_EXAMPLE_ML = """
type t = A of int | B | C of int * int | D
external examine : t -> int = "ml_examine"
"""

_EXAMPLE_C = """
value ml_examine(value x)
{
    int result = 0;
    if (Is_long(x)) {
        switch (Int_val(x)) {
        case 0: result = 1; break;
        case 1: result = 2; break;
        }
    } else {
        switch (Tag_val(x)) {
        case 0: result = Int_val(Field(x, 0)); break;
        case 1: result = Int_val(Field(x, 1)); break;
        }
    }
    return Val_int(result);
}
"""


def _run_example() -> int:
    project = Project().add_ocaml(_EXAMPLE_ML).add_c(_EXAMPLE_C)
    report = project.analyze()
    print("Figure 2 example (correct tag dispatch):")
    print(report.render())
    return min(len(report.errors), 125)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "check":
        return _run_check(args)
    if args.command == "batch":
        return _run_batch(args)
    if args.command == "bench":
        return _run_bench(args)
    if args.command == "example":
        return _run_example()
    return 125


if __name__ == "__main__":
    sys.exit(main())
