"""Command-line interface: the two §5.1 tools behind one driver.

Usage::

    mlffi-check check glue.ml stubs.c [more .ml/.c files ...]
    mlffi-check check --dialect pyext extension_module.c
    mlffi-check check --dialect jni native_lib.c
    mlffi-check check --no-flow-sensitive --no-gc-effects stubs.c
    mlffi-check check --format sarif glue.ml stubs.c > report.sarif
    mlffi-check batch src/glue --jobs 4 --format json
    mlffi-check batch --dialect pyext src/ext --jobs 4
    mlffi-check batch src/glue --link
    mlffi-check batch huge-corpus --stream --jobs 8
    mlffi-check link src/glue --jobs 4
    mlffi-check link --dialect jni src/native --format sarif
    mlffi-check serve src/glue --cache-dir .mlffi-cache
    mlffi-check serve src/glue --tcp 127.0.0.1:9178 --workers 8
    mlffi-check serve src/glue --tcp 0.0.0.0:9178 --reuse-port \\
        --shared-store /var/cache/mlffi
    mlffi-check watch src/glue --interval 1
    mlffi-check rules [--dialect rust] [--format json]
    mlffi-check conformance src/glue --dialect rust --format sarif
    mlffi-check bench [--program lablgtk-2.2.0]
    mlffi-check warmup [src/glue] [--dialect rust] [--format json]
    mlffi-check example
    mlffi-check --version

``check`` analyzes a multi-lingual project and prints the diagnostics plus
the Figure 9 style tally; the exit status is the number of errors (capped
at 125 so it stays a valid exit code; ``--strict`` makes warnings count
too).  ``batch`` sweeps a directory tree — every ``.ml``/``.mli`` feeds
the shared type repository, every ``.c`` is an independently analyzed (and
content-hash cached) translation unit fanned out across a worker pool.
``batch --link`` follows the sweep with the whole-program link pass
(cross-unit ``LINK_*`` diagnostics over per-unit interface summaries);
``--stream`` swaps the materializing scheduler for the bounded-memory
pipeline, so RSS stays flat on 10k–100k unit corpora.  ``link`` is the
streaming sweep + link pass as one command.  ``serve`` keeps the
analysis resident and answers newline-delimited JSON-RPC on stdio or
TCP; ``watch`` polls the tree and incrementally re-checks on every
change.  ``rules`` lists the stable rule registry (every diagnostic
kind's public ID, severity, and guideline provenance; see
:mod:`repro.rules`); ``conformance`` sweeps and links a corpus like
``link`` but reports *by rule* — every rule of the dialect's pack (and
the link pack) with its finding count and pass/fail status, the shape
a safety-guideline audit wants.  ``bench`` regenerates the Figure 9
table from the synthesized suite.  ``warmup`` precomputes the seed
artifacts (static tables and, given a corpus root, parsed host
interfaces) so cold workers load pickles instead of re-deriving them
(see :mod:`repro.seeds`).  ``example`` runs the paper's Figure 2
program as a smoke test.  ``--version`` prints the package version and
which kernel flavor — compiled or interpreted — is serving the run.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from . import __version__
from . import kernel as _kernel
from .api import Project
from .boundary import available_dialects, get_dialect, get_spec
from .core.exprs import Options
from .corpus import iter_tree
from .engine import (
    DEFAULT_CACHE_DIR,
    DEFAULT_MAX_ENTRIES,
    CheckRequest,
    IncrementalEngine,
    NullCache,
    ResultCache,
    SharedResultStore,
    render_unit,
    stream_batch,
)
from .rules import REGISTRY as RULE_REGISTRY
from .rules import rules_pack
from .sarif import batch_sarif_log, sarif_log
from .server.async_daemon import DEFAULT_MAX_QUEUE, DEFAULT_WORKERS
from .source import SourceFile
from .telemetry import (
    REGISTRY,
    Exposition,
    JsonLogger,
    Tracer,
    aggregate_phases,
    install,
    set_metrics_enabled,
    span,
    uninstall,
    write_trace,
)


def _add_dialect_flag(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--dialect",
        choices=available_dialects(),
        default="ocaml",
        help="boundary dialect to check (default: ocaml)",
    )


def _add_ablation_flags(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--no-flow-sensitive",
        action="store_true",
        help="disable B/I/T dataflow (ablation)",
    )
    command.add_argument(
        "--no-gc-effects",
        action="store_true",
        help="disable GC effect checking (ablation)",
    )


def _add_cache_flags(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=f"result cache location (default: {DEFAULT_CACHE_DIR})",
    )
    command.add_argument(
        "--no-cache",
        action="store_true",
        help="analyze every unit from scratch and store nothing",
    )
    command.add_argument(
        "--cache-max-entries",
        type=int,
        default=DEFAULT_MAX_ENTRIES,
        metavar="N",
        help="LRU cap on cache entries; 0 disables the cap "
        f"(default: {DEFAULT_MAX_ENTRIES})",
    )
    command.add_argument(
        "--shared-store",
        default=None,
        metavar="DIR",
        help="use a cross-process shared result store at DIR as the cold "
        "tier instead of --cache-dir; safe for many daemon replicas and "
        "batch runs to read and write concurrently",
    )


def _add_profile_flag(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--profile",
        nargs="?",
        const="-",
        default=None,
        metavar="PATH",
        help="wrap the analysis in cProfile and print the top-25 "
        "cumulative-time entries to stderr (or write them to PATH)",
    )


def _profiled(args: argparse.Namespace, run):
    """Run ``run()`` under cProfile when ``--profile`` was given.

    Stats go to stderr (or PATH) so machine-readable stdout formats stay
    parseable; future perf work starts from a profile, not guesswork.
    """
    if args.profile is None:
        return run()
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return run()
    finally:
        profiler.disable()
        stream = io.StringIO()
        stats = pstats.Stats(profiler, stream=stream)
        stats.strip_dirs().sort_stats("cumulative").print_stats(25)
        text = stream.getvalue()
        if args.profile == "-":
            sys.stderr.write(text)
        else:
            Path(args.profile).write_text(text)
            print(f"profile written to {args.profile}", file=sys.stderr)


def _add_strict_flag(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--strict",
        action="store_true",
        help="warnings also fail the run (count toward the exit status)",
    )


def _add_jobs_flag(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (0 = auto-detect; default: 1, sequential)",
    )


def _add_telemetry_flags(
    command: argparse.ArgumentParser, *, metrics: bool = True
) -> None:
    command.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="record phase-level spans and write a Chrome trace_event "
        "JSON file (load it in Perfetto or chrome://tracing)",
    )
    if metrics:
        command.add_argument(
            "--metrics-out",
            default=None,
            metavar="FILE",
            help="enable the metrics registry and write a Prometheus "
            "text exposition to FILE when the run finishes",
        )


@contextlib.contextmanager
def _telemetry(args: argparse.Namespace):
    """Install whatever surfaces the telemetry flags asked for.

    Yields the process-global :class:`Tracer` (``None`` without
    ``--trace-out``).  With no flags this is a no-op — the hooks in the
    analysis stay on their disabled fast path and output is untouched.
    """
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    tracer = Tracer() if trace_out else None
    if tracer is not None:
        install(tracer)
    if metrics_out:
        # the exposition describes THIS run, not whatever an embedding
        # process (tests, notebooks) pushed before it
        REGISTRY.reset()
        set_metrics_enabled(True)
    try:
        yield tracer
    finally:
        if tracer is not None:
            uninstall()
            write_trace(trace_out, tracer.export())
        if metrics_out:
            set_metrics_enabled(False)


def _write_metrics(
    path: str, cache=None, run_stats: Optional[dict] = None
) -> None:
    """Prometheus exposition for one CLI run: the pushed registry plus
    snapshot families (cold-tier cache stats, run totals)."""
    exposition = Exposition(REGISTRY)
    if cache is not None and hasattr(cache, "stats"):
        exposition.add_stats(
            "mlffi_cache",
            cache.stats(),
            kind="counter",
            tier=getattr(cache, "tier", "disk"),
        )
    if run_stats:
        exposition.add_stats("mlffi_run", run_stats, kind="gauge")
    Path(path).write_text(exposition.render(), encoding="utf-8")


def _telemetry_stanza(tracer: Optional[Tracer]) -> Optional[dict]:
    """The per-phase breakdown JSON reports carry when tracing is on."""
    if tracer is None:
        return None
    return {"phases": aggregate_phases(tracer.export())}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mlffi-check",
        description="Multi-lingual type inference for the OCaml-to-C FFI "
        "(reproduction of Furr & Foster, PLDI 2005)",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=(
            f"mlffi-check {__version__} "
            f"({_kernel.kernel_flavor()} kernel)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="analyze host + C sources")
    check.add_argument(
        "files",
        nargs="+",
        help="host sources (.ml/.mli for the ocaml dialect) feed the type "
        "repository; .c files are analyzed",
    )
    _add_dialect_flag(check)
    _add_ablation_flags(check)
    _add_strict_flag(check)
    _add_profile_flag(check)
    _add_telemetry_flags(check)
    check.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (sarif feeds GitHub code scanning)",
    )
    check.add_argument(
        "--quiet", action="store_true", help="print only the summary line"
    )
    check.add_argument(
        "--signatures",
        action="store_true",
        help="also print the inferred multi-lingual signatures",
    )

    batch = sub.add_parser(
        "batch",
        help="analyze every translation unit under a directory, in parallel "
        "and with content-hash caching",
    )
    batch.add_argument(
        "directory",
        help="root to scan: host sources feed the shared type repository, "
        "each .c file becomes one translation unit",
    )
    _add_dialect_flag(batch)
    _add_jobs_flag(batch)
    _add_cache_flags(batch)
    _add_strict_flag(batch)
    _add_profile_flag(batch)
    _add_telemetry_flags(batch)
    batch.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (json is one report object, sarif feeds "
        "GitHub code scanning)",
    )
    batch.add_argument(
        "--link",
        action="store_true",
        help="after the sweep, link every unit's interface summary and "
        "report cross-unit inconsistencies (LINK_* diagnostics)",
    )
    batch.add_argument(
        "--stream",
        action="store_true",
        help="bounded-memory pipeline: load, check, summarize and discard "
        "units under a fixed in-flight window instead of materializing "
        "the whole corpus (text output streams per-unit blocks; json "
        "becomes JSON-lines; sarif is unavailable)",
    )
    batch.add_argument(
        "--window",
        type=int,
        default=0,
        metavar="N",
        help="in-flight unit bound for --stream (0 = 4x jobs)",
    )
    _add_ablation_flags(batch)

    link = sub.add_parser(
        "link",
        help="whole-program boundary link: stream-check a corpus, union "
        "its per-unit interface summaries, and report cross-unit "
        "inconsistencies (conflicting declarations, duplicate "
        "registrations, unresolved externs)",
    )
    link.add_argument(
        "directory",
        help="corpus root to scan, check, and link",
    )
    _add_dialect_flag(link)
    _add_jobs_flag(link)
    _add_cache_flags(link)
    _add_strict_flag(link)
    _add_profile_flag(link)
    _add_telemetry_flags(link)
    _add_ablation_flags(link)
    link.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (json reports stream stats + the link "
        "report; sarif carries the cross-unit diagnostics)",
    )
    link.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the per-unit blocks; print only the link report",
    )
    link.add_argument(
        "--window",
        type=int,
        default=0,
        metavar="N",
        help="in-flight unit bound for the streaming sweep (0 = 4x jobs)",
    )

    serve = sub.add_parser(
        "serve",
        help="persistent analysis daemon: newline-delimited JSON-RPC over "
        "stdio (default) or TCP, re-checking only what changed",
    )
    serve.add_argument(
        "directory",
        help="project root the resident engine keeps warm",
    )
    _add_dialect_flag(serve)
    _add_jobs_flag(serve)
    _add_cache_flags(serve)
    _add_ablation_flags(serve)
    _add_telemetry_flags(serve, metrics=False)
    serve.add_argument(
        "--log-json",
        default=None,
        metavar="FILE",
        help="append one JSON event per served request to FILE (async "
        "TCP daemon only): method, id, outcome, duration, coalesce role",
    )
    serve.add_argument(
        "--tcp",
        metavar="HOST:PORT",
        default=None,
        help="listen on TCP instead of stdio (e.g. 127.0.0.1:9178; "
        "port 0 picks a free port)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=DEFAULT_WORKERS,
        metavar="N",
        help="analysis worker threads for the async TCP daemon "
        f"(default: {DEFAULT_WORKERS})",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=DEFAULT_MAX_QUEUE,
        metavar="N",
        help="computations allowed to queue beyond the workers before "
        "the daemon sheds requests with an OVERLOADED error "
        f"(default: {DEFAULT_MAX_QUEUE})",
    )
    serve.add_argument(
        "--reuse-port",
        action="store_true",
        help="set SO_REUSEPORT so several daemon replicas can share one "
        "port (pair with --shared-store for a fleet-wide warm cache)",
    )
    serve.add_argument(
        "--threaded",
        action="store_true",
        help="use the legacy thread-per-connection TCP server instead "
        "of the async daemon (no coalescing fan-out limit, no "
        "backpressure)",
    )

    watch = sub.add_parser(
        "watch",
        help="poll the tree and incrementally re-check on every change",
    )
    watch.add_argument(
        "directory",
        help="project root to watch",
    )
    _add_dialect_flag(watch)
    _add_jobs_flag(watch)
    _add_cache_flags(watch)
    _add_ablation_flags(watch)
    watch.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="polling interval (default: 1.0)",
    )
    watch.add_argument(
        "--max-polls",
        type=int,
        default=0,
        metavar="N",
        help="stop after N polls (0 = run until interrupted)",
    )

    rules = sub.add_parser(
        "rules",
        help="list the stable rule registry: every diagnostic kind's "
        "public ID, default severity, summary, and guideline provenance",
    )
    rules.add_argument(
        "--dialect",
        choices=RULE_REGISTRY.dialects(),
        default=None,
        help="show only one pack (default: every pack, the paper's own "
        "taxonomy is the `ocaml` pack, cross-unit rules the `link` pack)",
    )
    rules.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format",
    )

    conformance = sub.add_parser(
        "conformance",
        help="sweep + link a corpus and report BY RULE: every rule of "
        "the dialect's pack (plus the link pack) with its finding count "
        "and pass/fail status",
    )
    conformance.add_argument(
        "directory",
        help="corpus root to scan, check, link, and audit",
    )
    _add_dialect_flag(conformance)
    _add_jobs_flag(conformance)
    _add_cache_flags(conformance)
    _add_strict_flag(conformance)
    _add_ablation_flags(conformance)
    conformance.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (sarif carries every grouped finding with "
        "registry rule metadata)",
    )
    conformance.add_argument(
        "--window",
        type=int,
        default=0,
        metavar="N",
        help="in-flight unit bound for the streaming sweep (0 = 4x jobs)",
    )

    bench = sub.add_parser("bench", help="regenerate the Figure 9 table")
    bench.add_argument(
        "--program", help="run a single benchmark by name", default=None
    )
    bench.add_argument(
        "--compare",
        action="store_true",
        help="print the paper-vs-measured comparison table",
    )

    warmup = sub.add_parser(
        "warmup",
        help="precompute seed artifacts so fresh workers load instead of "
        "rebuilding",
    )
    warmup.add_argument(
        "directory",
        nargs="?",
        default=None,
        help="corpus root: host sources found here are parsed once and "
        "their interfaces stored as seed artifacts",
    )
    _add_dialect_flag(warmup)
    warmup.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format",
    )

    sub.add_parser("example", help="run the paper's Figure 2 example")
    return parser


def _exit_code(tally: dict, strict: bool) -> int:
    """Exit-status contract: errors always fail; warnings only when
    ``--strict`` asked for them.  Capped at 125 (a valid exit code)."""
    failing = tally["errors"]
    if strict:
        failing += tally["warnings"]
    return min(failing, 125)


def _make_cache(args: argparse.Namespace):
    """The cold-tier cache the flags describe."""
    if args.no_cache:
        return NullCache()
    max_entries = args.cache_max_entries if args.cache_max_entries > 0 else None
    if getattr(args, "shared_store", None):
        return SharedResultStore(args.shared_store, max_entries=max_entries)
    return ResultCache(args.cache_dir, max_entries=max_entries)


def _run_check(args: argparse.Namespace) -> int:
    dialect = get_dialect(args.dialect)
    project = Project(dialect=dialect.name)
    for name in args.files:
        path = Path(name)
        if not path.exists():
            print(f"error: no such file: {name}", file=sys.stderr)
            return 125
        source = SourceFile(str(path), path.read_text())
        if path.suffix in dialect.host_suffixes:
            project.add_ocaml(source)
        elif path.suffix in dialect.unit_suffixes:
            project.add_c(source)
        else:
            wanted = "/".join(dialect.host_suffixes + dialect.unit_suffixes)
            print(
                f"error: unknown extension on {name} for dialect "
                f"{dialect.name} (want {wanted})",
                file=sys.stderr,
            )
            return 125
    options = Options(
        flow_sensitive=not args.no_flow_sensitive,
        gc_effects=not args.no_gc_effects,
    )
    with _telemetry(args) as tracer:

        def run():
            # the single-shot path runs in-process, so phase spans land
            # on the installed tracer directly; the unit span is ours
            with span("<project>", cat="unit", dialect=args.dialect):
                return project.analyze(options)

        report = _profiled(args, run)
        if args.metrics_out:
            _write_metrics(
                args.metrics_out,
                run_stats={
                    "elapsed_seconds": report.elapsed_seconds,
                    "unification_steps": report.unification_steps,
                    **{
                        f"diag_{column}": count
                        for column, count in report.tally().items()
                    },
                },
            )
    if args.format == "sarif":
        log = sarif_log(report.diagnostics, tool_version=__version__)
        print(json.dumps(log, indent=2, sort_keys=True))
    elif args.format == "json":
        payload = {
            "diagnostics": [d.to_dict() for d in report.diagnostics],
            "tally": report.tally(),
            "signatures": dict(report.signatures),
            "unification_steps": report.unification_steps,
            "elapsed_seconds": report.elapsed_seconds,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.quiet:
        print(report.render().splitlines()[-1])
    else:
        print(report.render())
        if args.signatures:
            print()
            print("inferred signatures:")
            for name in sorted(report.signatures):
                print("  " + report.signatures[name])
    return _exit_code(report.tally(), args.strict)


def _combined_tally(*tallies: dict) -> dict:
    """Sum Figure-9 tallies (per-unit sweep + link pass)."""
    total: dict = {}
    for tally in tallies:
        for column, count in tally.items():
            total[column] = total.get(column, 0) + count
    return total


def _link_results(results) -> "LinkReport":
    """Run the link pass over finished results' interface summaries."""
    from .linker import Linker

    linker = Linker()
    for result in results:
        if result.failure is None and result.summary:
            linker.add_dict(result.summary)
    return linker.report()


def _stream_scan(args: argparse.Namespace, options: Options):
    """The lazy corpus behind ``batch --stream`` and ``link``: eager
    hosts, a unit-path list, and a request generator that loads one
    source at a time.  Returns ``None`` (after printing) on a bad tree.
    """
    root = Path(args.directory)
    if not root.is_dir():
        print(f"error: no such directory: {args.directory}", file=sys.stderr)
        return None
    scan = iter_tree(root, get_dialect(args.dialect))
    if not len(scan):
        print(
            f"error: no translation units under {args.directory}",
            file=sys.stderr,
        )
        return None
    hosts = tuple(scan.hosts)

    def requests(trace: bool = False):
        for source in scan.iter_units():
            yield CheckRequest(
                name=source.filename,
                c_sources=(source,),
                ocaml_sources=hosts,
                options=options,
                dialect=args.dialect,
                trace=trace,
            )

    return requests


def _run_batch_stream(args: argparse.Namespace, options: Options) -> int:
    """``batch --stream``: the bounded-memory sweep, batch-flavoured."""
    if args.format == "sarif":
        print(
            "error: --stream cannot accumulate a sarif log; "
            "use --format text or json",
            file=sys.stderr,
        )
        return 125
    requests = _stream_scan(args, options)
    if requests is None:
        return 125
    cache = _make_cache(args)
    from .linker import Linker

    linker = Linker() if args.link else None

    def on_result(result) -> None:
        if linker is not None and result.failure is None and result.summary:
            linker.add_dict(result.summary)
        if args.format == "json":
            print(json.dumps(result.to_dict(), sort_keys=True))
        else:
            print("\n".join(render_unit(result)))

    with _telemetry(args) as tracer:

        def run():
            with span("batch", cat="phase"):
                return stream_batch(
                    requests(trace=tracer is not None),
                    jobs=args.jobs,
                    cache=cache,
                    on_result=on_result,
                    window=args.window or None,
                )

        stats = _profiled(args, run)
        link_report = linker.report() if linker is not None else None
        if args.metrics_out:
            _write_metrics(
                args.metrics_out, cache, run_stats=stats.to_dict()
            )
        telemetry = _telemetry_stanza(tracer)
    if args.format == "json":
        trailer: dict = {"stream": stats.to_dict()}
        if link_report is not None:
            trailer["link"] = link_report.to_dict()
        if telemetry is not None:
            trailer["telemetry"] = telemetry
        print(json.dumps(trailer, sort_keys=True))
    else:
        if link_report is not None:
            print(link_report.render())
        print(stats.render())
    if stats.failures:
        return 125
    tallies = [stats.tally]
    if link_report is not None:
        tallies.append(link_report.tally())
    return _exit_code(_combined_tally(*tallies), args.strict)


def _run_batch(args: argparse.Namespace) -> int:
    options = Options(
        flow_sensitive=not args.no_flow_sensitive,
        gc_effects=not args.no_gc_effects,
    )
    if args.stream:
        return _run_batch_stream(args, options)
    root = Path(args.directory)
    if not root.is_dir():
        print(f"error: no such directory: {args.directory}", file=sys.stderr)
        return 125
    project = Project.from_directory(root, dialect=args.dialect)
    if not project.c_sources:
        print(
            f"error: no .c translation units under {args.directory}",
            file=sys.stderr,
        )
        return 125
    cache = _make_cache(args)
    with _telemetry(args) as tracer:

        def run():
            with span("batch", cat="phase"):
                return project.analyze_batch(
                    options,
                    jobs=args.jobs,
                    cache=cache,
                    trace=tracer is not None,
                )

        report = _profiled(args, run)
        link_report = _link_results(report.results) if args.link else None
        if args.metrics_out:
            _write_metrics(
                args.metrics_out,
                cache,
                run_stats={
                    "units": len(report.results),
                    "failures": report.failures,
                    "coalesced": report.coalesced,
                    "elapsed_seconds": report.elapsed_seconds,
                    "jobs": report.jobs,
                },
            )
        telemetry = _telemetry_stanza(tracer)
    if args.format == "sarif":
        log = batch_sarif_log(
            report,
            tool_version=__version__,
            link_diagnostics=(
                list(link_report.diagnostics) if link_report else ()
            ),
        )
        print(json.dumps(log, indent=2, sort_keys=True))
    elif args.format == "json":
        doc = report.to_dict()
        if link_report is not None:
            doc["link"] = link_report.to_dict()
        if telemetry is not None:
            doc["telemetry"] = telemetry
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(report.render())
        if link_report is not None:
            print(link_report.render())
    if report.failures:
        return 125
    tallies = [report.tally()]
    if link_report is not None:
        tallies.append(link_report.tally())
    return _exit_code(_combined_tally(*tallies), args.strict)


def _run_link(args: argparse.Namespace) -> int:
    """``mlffi-check link``: stream-check the corpus, then link it."""
    options = Options(
        flow_sensitive=not args.no_flow_sensitive,
        gc_effects=not args.no_gc_effects,
    )
    requests = _stream_scan(args, options)
    if requests is None:
        return 125
    cache = _make_cache(args)
    from .linker import Linker

    linker = Linker()

    def on_result(result) -> None:
        if result.failure is None and result.summary:
            linker.add_dict(result.summary)
        if args.format == "text" and not args.quiet:
            print("\n".join(render_unit(result)))

    with _telemetry(args) as tracer:

        def run():
            with span("link-sweep", cat="phase"):
                return stream_batch(
                    requests(trace=tracer is not None),
                    jobs=args.jobs,
                    cache=cache,
                    on_result=on_result,
                    window=args.window or None,
                )

        stats = _profiled(args, run)
        with span("link", cat="phase"):
            link_report = linker.report()
        if args.metrics_out:
            _write_metrics(
                args.metrics_out, cache, run_stats=stats.to_dict()
            )
        telemetry = _telemetry_stanza(tracer)
    if args.format == "sarif":
        log = sarif_log(link_report.diagnostics, tool_version=__version__)
        print(json.dumps(log, indent=2, sort_keys=True))
    elif args.format == "json":
        doc = {
            "stream": stats.to_dict(),
            "link": link_report.to_dict(),
        }
        if telemetry is not None:
            doc["telemetry"] = telemetry
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(link_report.render())
        print(stats.render())
    if stats.failures:
        return 125
    return _exit_code(
        _combined_tally(stats.tally, link_report.tally()), args.strict
    )


def _run_rules(args: argparse.Namespace) -> int:
    """``mlffi-check rules``: print the stable rule registry."""
    rules = rules_pack(args.dialect)
    if args.format == "json":
        payload = {"rules": [rule.to_dict() for rule in rules]}
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    by_pack: dict[str, list] = {}
    for rule in rules:
        by_pack.setdefault(rule.dialect, []).append(rule)
    for pack, members in by_pack.items():
        print(f"== pack {pack}")
        for rule in members:
            print(
                f"   {rule.id:<28} {rule.category.value:<15} {rule.summary}"
            )
    packs = len(by_pack)
    print(f"-- {len(rules)} rule(s) in {packs} pack(s)")
    return 0


def _conformance_rows(
    dialect: str, fired: dict[str, int]
) -> list[tuple["Rule", int]]:
    """Every rule the audit covers, with its finding count.

    Coverage is the dialect's own pack plus the cross-unit ``link``
    pack; rules that fired from outside both (the shared paper taxonomy
    can fire under any dialect) are appended so no finding is dropped.
    """
    covered = list(rules_pack(get_spec(dialect).rule_pack))
    covered += rules_pack("link")
    covered_ids = {rule.id for rule in covered}
    for rule_id in sorted(fired):
        if rule_id not in covered_ids:
            covered.append(RULE_REGISTRY.get(rule_id))
    return [(rule, fired.get(rule.id, 0)) for rule in covered]


def _run_conformance(args: argparse.Namespace) -> int:
    """``mlffi-check conformance``: the link sweep, reported by rule."""
    options = Options(
        flow_sensitive=not args.no_flow_sensitive,
        gc_effects=not args.no_gc_effects,
    )
    requests = _stream_scan(args, options)
    if requests is None:
        return 125
    cache = _make_cache(args)
    from .linker import Linker

    linker = Linker()
    fired: dict[str, int] = {}
    findings: list = []

    def record(diag) -> None:
        fired[diag.rule_id] = fired.get(diag.rule_id, 0) + 1
        findings.append(diag)

    def on_result(result) -> None:
        if result.failure is None and result.summary:
            linker.add_dict(result.summary)
        for diag in result.diagnostics:
            record(diag)

    with span("conformance-sweep", cat="phase"):
        stats = stream_batch(
            requests(),
            jobs=args.jobs,
            cache=cache,
            on_result=on_result,
            window=args.window or None,
        )
    link_report = linker.report()
    for diag in link_report.diagnostics:
        record(diag)
    rows = _conformance_rows(args.dialect, fired)

    def status(rule, count: int) -> str:
        if not count:
            return "pass"
        if rule.category.value == "error":
            return "fail"
        if rule.category.value == "warning":
            return "fail" if args.strict else "warn"
        return "info"

    if args.format == "sarif":
        print(
            json.dumps(
                sarif_log(findings, tool_version=__version__),
                indent=2,
                sort_keys=True,
            )
        )
    elif args.format == "json":
        doc = {
            "conformance": {
                "dialect": args.dialect,
                "pack": get_spec(args.dialect).rule_pack,
                "rules": [
                    {
                        **rule.to_dict(),
                        "findings": count,
                        "status": status(rule, count),
                    }
                    for rule, count in rows
                ],
            },
            "stream": stats.to_dict(),
            "link": link_report.to_dict(),
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(f"== conformance: {args.directory} (dialect {args.dialect})")
        for rule, count in rows:
            verdict = status(rule, count)
            suffix = f"{count} finding(s)" if count else "-"
            print(f"   {verdict:<4} {rule.id:<28} {suffix}")
        failing = sum(
            1 for rule, count in rows if status(rule, count) == "fail"
        )
        total = sum(count for _rule, count in rows)
        print(
            f"-- conformance: {stats.units} unit(s), {len(rows)} rule(s) "
            f"checked, {failing} failing, {total} finding(s)"
        )
    if stats.failures:
        return 125
    return _exit_code(
        _combined_tally(stats.tally, link_report.tally()), args.strict
    )


def _build_engine(args: argparse.Namespace) -> Optional[IncrementalEngine]:
    """The resident engine behind both ``serve`` and ``watch``."""
    root = Path(args.directory)
    if not root.is_dir():
        print(f"error: no such directory: {args.directory}", file=sys.stderr)
        return None
    options = Options(
        flow_sensitive=not args.no_flow_sensitive,
        gc_effects=not args.no_gc_effects,
    )
    return IncrementalEngine(
        root,
        dialect=args.dialect,
        options=options,
        jobs=args.jobs,
        cache=_make_cache(args),
        trace=getattr(args, "trace_out", None) is not None,
    )


def _run_serve(args: argparse.Namespace) -> int:
    from .server import (
        AnalysisService,
        serve_async_tcp,
        serve_stdio,
        serve_tcp,
    )

    engine = _build_engine(args)
    if engine is None:
        return 125
    service = AnalysisService(engine)
    # the daemon's metrics RPC reads pushed instruments (per-unit
    # latencies, cache probes); serving without them would answer with
    # snapshot counters only, so they stay on for the daemon's lifetime
    set_metrics_enabled(True)
    log = JsonLogger(path=args.log_json) if args.log_json else None
    try:
        with _telemetry(args):
            if args.tcp is None:
                return serve_stdio(service, log=log)
            host, _, port_text = args.tcp.rpartition(":")
            try:
                port = int(port_text)
            except ValueError:
                print(
                    f"error: bad --tcp address: {args.tcp}", file=sys.stderr
                )
                return 125
            try:
                if args.threaded:
                    return serve_tcp(
                        service, host or "127.0.0.1", port, log=log
                    )
                return serve_async_tcp(
                    service,
                    host or "127.0.0.1",
                    port,
                    workers=max(1, args.workers),
                    max_queue=max(0, args.max_queue),
                    reuse_port=args.reuse_port,
                    log=log,
                )
            except KeyboardInterrupt:
                return 0
    finally:
        set_metrics_enabled(False)
        if log is not None:
            log.close()


def _run_watch(args: argparse.Namespace) -> int:
    from .server import WatchEvent, Watcher

    engine = _build_engine(args)
    if engine is None:
        return 125
    # snapshot BEFORE the (potentially long) initial check: an edit made
    # while it runs must show up as a diff on the first poll
    watcher = Watcher(engine, interval=args.interval)
    initial = engine.check()
    print(initial.render(), flush=True)

    def on_event(event: WatchEvent) -> None:
        changed = ", ".join(Path(path).name for path in event.changed)
        print(f"\n== change: {changed}", flush=True)
        print(event.report.render(), flush=True)
        ran = len(event.report.ran)
        print(
            f"   re-ran {ran} unit(s), reused {event.report.reused}",
            flush=True,
        )

    try:
        watcher.run(
            max_polls=args.max_polls if args.max_polls > 0 else None,
            on_event=on_event,
        )
    except KeyboardInterrupt:
        pass
    return 0


def _run_bench(args: argparse.Namespace) -> int:
    from .bench.report import comparison_table, figure9_table
    from .bench.runner import SuiteResult, run_benchmark, run_suite
    from .bench.specs import SUITE, spec_by_name

    if args.program is not None:
        try:
            spec = spec_by_name(args.program)
        except KeyError:
            names = ", ".join(s.name for s in SUITE)
            print(
                f"error: unknown benchmark `{args.program}` (one of: {names})",
                file=sys.stderr,
            )
            return 125
        suite = SuiteResult(results=[run_benchmark(spec)])
    else:
        suite = run_suite()
    print(figure9_table(suite))
    if args.compare:
        print()
        print(comparison_table(suite))
    return 0


_EXAMPLE_ML = """
type t = A of int | B | C of int * int | D
external examine : t -> int = "ml_examine"
"""

_EXAMPLE_C = """
value ml_examine(value x)
{
    int result = 0;
    if (Is_long(x)) {
        switch (Int_val(x)) {
        case 0: result = 1; break;
        case 1: result = 2; break;
        }
    } else {
        switch (Tag_val(x)) {
        case 0: result = Int_val(Field(x, 0)); break;
        case 1: result = Int_val(Field(x, 1)); break;
        }
    }
    return Val_int(result);
}
"""


def _run_example() -> int:
    project = Project().add_ocaml(_EXAMPLE_ML).add_c(_EXAMPLE_C)
    report = project.analyze()
    print("Figure 2 example (correct tag dispatch):")
    print(report.render())
    return min(len(report.errors), 125)


def _run_warmup(args: argparse.Namespace) -> int:
    """Build the seed artifacts ahead of time (``mlffi-check warmup``).

    Always writes the static-table bundle; with a corpus directory it
    also parses the dialect's host sources and stores the interface
    artifact, so the first real sweep loads instead of re-deriving.
    """
    from . import seeds

    report: dict = {
        "seed_dir": str(seeds.seed_dir()),
        "artifacts_enabled": seeds.artifacts_enabled(),
        "registry_fingerprint": seeds.registry_fingerprint(),
        "kernel": _kernel.kernel_flavor(),
        "static": seeds.warmup_static(),
        "hosts": None,
    }
    if args.directory is not None:
        root = Path(args.directory)
        if not root.is_dir():
            print(f"error: `{root}` is not a directory", file=sys.stderr)
            return 2
        dialect = get_dialect(args.dialect)
        host_sources = tuple(
            SourceFile(str(path), path.read_text())
            for path in sorted(root.rglob("*"))
            if path.is_file() and path.suffix in dialect.host_suffixes
        )
        report["hosts"] = seeds.warmup_hosts(args.dialect, host_sources)
    report["pruned"] = seeds.prune_artifacts()
    if args.format == "json":
        print(json.dumps(report, indent=2))
        return 0
    print(f"seed dir:    {report['seed_dir']}")
    print(f"artifacts:   {'on' if report['artifacts_enabled'] else 'off'}")
    print(f"registry:    {report['registry_fingerprint'][:16]}")
    print(f"kernel:      {report['kernel']}")
    static = report["static"]
    print(
        f"static:      {static['tables']} table(s) "
        f"({'stored' if static['stored'] else 'not stored'})"
    )
    hosts = report["hosts"]
    if hosts is not None:
        if hosts["fingerprint"]:
            print(
                f"hosts:       {hosts['hosts']} {args.dialect} source(s), "
                f"fingerprint {hosts['fingerprint'][:16]}"
            )
        else:
            print(f"hosts:       no {args.dialect} host sources found")
    if report["pruned"]:
        print(f"pruned:      {report['pruned']} old artifact(s)")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "check":
        return _run_check(args)
    if args.command == "batch":
        return _run_batch(args)
    if args.command == "link":
        return _run_link(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "watch":
        return _run_watch(args)
    if args.command == "rules":
        return _run_rules(args)
    if args.command == "conformance":
        return _run_conformance(args)
    if args.command == "bench":
        return _run_bench(args)
    if args.command == "warmup":
        return _run_warmup(args)
    if args.command == "example":
        return _run_example()
    return 125


if __name__ == "__main__":
    sys.exit(main())
