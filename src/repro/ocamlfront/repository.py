"""The central type repository (paper §5.1).

As each OCaml source file is analyzed the repository is updated with the
newly extracted type information, beginning with a pre-generated repository
for the standard library.  Once all files are in, :func:`build_initial_env`
performs phase one of the analysis: every ``external`` is translated by
``Φ`` into a C function type, producing the initial environment ``Γ_I``
consumed by the C phase.

Alias and opaque resolution happens here: a named type is replaced by its
definition body (with type parameters substituted) so that C code sees the
concrete physical representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.checker import InitialEnv, PolyParam
from ..core.srctypes import (
    MLSrcType,
    SArrow,
    SConstrApp,
    SConstructor,
    SField,
    SOpaque,
    SPolyVariant,
    SRecord,
    SSum,
    STuple,
    SVar,
    arrow_chain,
)
from ..core.translate import TranslationError, Translator
from ..core.types import C_INT, CFun, CPtr, CValue, NOGC, fresh_mt


def bytecode_stub_type(native: CFun) -> CFun:
    """The uniform bytecode-stub signature ``value f(value *argv, int argn)``.

    The stub shares the native function's effect (it is the same code) but
    its argument array erases the per-parameter OCaml types.
    """
    return CFun(
        params=(CPtr(CValue(fresh_mt())), C_INT),
        result=native.result,
        effect=native.effect,
    )
from ..source import SourceFile
from .ast import ExternalDecl, MLUnit, TypeDecl
from .parser import parse_ml, parse_ml_text
from .stdlib import stdlib_declarations


def substitute(body: MLSrcType, mapping: dict[str, MLSrcType]) -> MLSrcType:
    """Replace type variables by their arguments in a definition body."""
    if isinstance(body, SVar):
        return mapping.get(body.name, body)
    if isinstance(body, SArrow):
        return SArrow(
            substitute(body.param, mapping), substitute(body.result, mapping)
        )
    if isinstance(body, STuple):
        return STuple(tuple(substitute(e, mapping) for e in body.elems))
    if isinstance(body, SConstrApp):
        return SConstrApp(
            name=body.name,
            args=tuple(substitute(a, mapping) for a in body.args),
        )
    if isinstance(body, SSum):
        return SSum(
            tuple(
                SConstructor(
                    name=c.name,
                    args=tuple(substitute(a, mapping) for a in c.args),
                )
                for c in body.constructors
            )
        )
    if isinstance(body, SRecord):
        return SRecord(
            tuple(
                SField(
                    name=f.name,
                    type=substitute(f.type, mapping),
                    mutable=f.mutable,
                )
                for f in body.fields
            )
        )
    if isinstance(body, SPolyVariant):
        return SPolyVariant(
            tuple(
                SConstructor(
                    name=t.name,
                    args=tuple(substitute(a, mapping) for a in t.args),
                )
                for t in body.tags
            )
        )
    return body


@dataclass
class TypeRepository:
    """Named type declarations plus the externals gathered so far."""

    types: dict[str, TypeDecl] = field(default_factory=dict)
    externals: list[ExternalDecl] = field(default_factory=list)

    @classmethod
    def with_stdlib(cls) -> "TypeRepository":
        repo = cls()
        for decl in stdlib_declarations():
            repo.types[decl.name] = decl
        return repo

    # -- updates ---------------------------------------------------------------

    def add_unit(self, unit: MLUnit) -> None:
        for decl in unit.types:
            existing = self.types.get(decl.name)
            if existing is not None and decl.is_opaque and not existing.is_opaque:
                # an .mli hiding a type already known concretely: keep the
                # concrete body (paper: opaque types are replaced by the
                # types they hide, when available)
                continue
            self.types[decl.name] = decl
        self.externals.extend(unit.externals)

    def add_source(self, source: SourceFile) -> None:
        self.add_unit(parse_ml(source))

    def add_text(self, text: str, filename: str = "<string>") -> None:
        self.add_unit(parse_ml_text(text, filename))

    # -- resolution ---------------------------------------------------------------

    def resolve(
        self, name: str, args: tuple[MLSrcType, ...]
    ) -> Optional[MLSrcType]:
        """Resolve a type-constructor application to its definition body."""
        decl = self.types.get(name)
        if decl is None:
            return None
        if decl.is_opaque:
            return SOpaque(name=name)
        if len(decl.params) != len(args):
            # arity mismatch — treat as opaque rather than crash; the C
            # phase will then refuse to look inside it
            return SOpaque(name=name)
        assert decl.body is not None
        mapping = dict(zip(decl.params, args))
        return substitute(decl.body, mapping)


def build_initial_env(repository: TypeRepository) -> InitialEnv:
    """Phase one (paper §3.1): translate every external via ``Φ``."""
    env = InitialEnv()
    opaque_reprs: dict = {}
    for external in repository.externals:
        saw_poly_variant = False

        def on_poly_variant(_variant: SPolyVariant) -> None:
            nonlocal saw_poly_variant
            saw_poly_variant = True

        translator = Translator(
            resolve=repository.resolve,
            on_poly_variant=on_poly_variant,
            opaque_reprs=opaque_reprs,
        )
        try:
            fn_ct = translator.phi(external.mltype)
        except TranslationError:
            continue
        if external.noalloc:
            fn_ct = CFun(params=fn_ct.params, result=fn_ct.result, effect=NOGC)
        if external.c_name_bytecode:
            # arity > 5 convention: `external f : ... = "f_bc" "f_nat"` —
            # the first name is the bytecode stub with the uniform
            # signature `value f_bc(value *argv, int argn)`, the second is
            # the native stub with one parameter per argument.
            env.functions[external.c_name_bytecode] = fn_ct
            env.spans[external.c_name_bytecode] = external.span
            env.functions[external.c_name] = bytecode_stub_type(fn_ct)
            env.spans[external.c_name] = external.span
        else:
            env.functions[external.c_name] = fn_ct
            env.spans[external.c_name] = external.span
        if saw_poly_variant:
            env.poly_variant_users.add(external.c_name)
        # record bare-'a parameters for the §5.2 polymorphism audit
        chain = arrow_chain(external.mltype)
        for index, param in enumerate(chain[:-1]):
            if isinstance(param, SVar):
                var = translator._tyvars.get(param.name)
                if var is not None:
                    env.poly_params.append(
                        PolyParam(
                            c_name=external.c_name,
                            param_index=index,
                            var=var,
                            span=external.span,
                        )
                    )
    return env


def initial_env_from_sources(
    sources: list[SourceFile], with_stdlib: bool = True
) -> InitialEnv:
    """Parse OCaml sources and build ``Γ_I`` in one step."""
    repo = TypeRepository.with_stdlib() if with_stdlib else TypeRepository()
    for source in sources:
        repo.add_source(source)
    return build_initial_env(repo)
