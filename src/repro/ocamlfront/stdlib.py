"""Pre-generated repository entries for the OCaml standard library.

The paper's tool ships "a pre-generated repository from the standard OCaml
library" (§5.1).  This module plays that role: the handful of stdlib types
that 2004-era glue code actually mentions, declared in source form so the
ordinary resolution path handles them.

``ref``, ``option``, ``list`` and ``array`` are handled structurally by
``ρ`` itself (:mod:`repro.core.translate`) and need no entry here.
"""

from __future__ import annotations

from ..seeds import seed_table
from ..core.srctypes import SConstructor, SField, SInt, SRecord, SString, SSum, SVar
from .ast import TypeDecl


@seed_table("ocaml.stdlib_declarations")
def stdlib_declarations() -> tuple[TypeDecl, ...]:
    """Declarations seeded into every fresh repository (memoized; the
    declarations are frozen, so one tuple serves every repository)."""
    return (
        # I/O channels are custom blocks managed by the runtime.
        TypeDecl(name="in_channel"),
        TypeDecl(name="out_channel"),
        TypeDecl(name="Buffer.t"),
        TypeDecl(name="Queue.t", params=("a",)),
        TypeDecl(name="Hashtbl.t", params=("a", "b")),
        # Unix file descriptors are plain ints at the C boundary.
        TypeDecl(name="Unix.file_descr", body=SInt()),
        TypeDecl(name="Unix.inet_addr"),
        # result/either as ordinary sums
        TypeDecl(
            name="result",
            params=("a", "b"),
            body=SSum(
                (
                    SConstructor("Ok", (SVar("a"),)),
                    SConstructor("Error", (SVar("b"),)),
                )
            ),
        ),
        TypeDecl(
            name="either",
            params=("a", "b"),
            body=SSum(
                (
                    SConstructor("Left", (SVar("a"),)),
                    SConstructor("Right", (SVar("b"),)),
                )
            ),
        ),
        # Lexing positions show up in parser glue.
        TypeDecl(
            name="Lexing.position",
            body=SRecord(
                (
                    SField("pos_fname", SString()),
                    SField("pos_lnum", SInt()),
                    SField("pos_bol", SInt()),
                    SField("pos_cnum", SInt()),
                )
            ),
        ),
        # exn is abstract to the FFI.
        TypeDecl(name="exn"),
        # Common aliases.
        TypeDecl(name="pos", body=SInt()),
        TypeDecl(
            name="Complex.t",
            body=SRecord((SField("re", SInt()), SField("im", SInt()))),
        ),
    )
