"""Parser extracting type/external declarations from OCaml source.

Everything that is not a ``type`` or ``external`` declaration (let
bindings, opens, module headers, exceptions ...) is skipped by balanced
scanning — mirroring the paper's camlp4 tool, which only records type
signatures while the compiler does the real parsing.
"""

from __future__ import annotations


from ..core.srctypes import (
    MLSrcType,
    SArrow,
    SBool,
    SChar,
    SConstrApp,
    SConstructor,
    SFloat,
    SInt,
    SPolyVariant,
    SRecord,
    SField,
    SString,
    STuple,
    SUnit,
    SVar,
)
from ..source import SourceFile, Span
from .ast import ExternalDecl, MLUnit, TypeDecl
from .lexer import MLTokKind, MLToken, tokenize_ml


class MLParseError(Exception):
    def __init__(self, message: str, span: Span):
        self.span = span
        super().__init__(f"{span}: {message}")


_BUILTIN_ATOMS: dict[str, MLSrcType] = {
    "unit": SUnit(),
    "int": SInt(),
    "bool": SBool(),
    "char": SChar(),
    "string": SString(),
    "bytes": SString(),
    "float": SFloat(),
}

#: top-level keywords that end a skipped region
_TOP_KEYWORDS = {
    "type", "external", "let", "open", "module", "exception", "val",
    "include", "class",
}


class MLParser:
    def __init__(self, source: SourceFile):
        self.source = source
        self.tokens = tokenize_ml(source)
        self.pos = 0

    # -- plumbing ---------------------------------------------------------------

    def peek(self, offset: int = 0) -> MLToken:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> MLToken:
        token = self.tokens[self.pos]
        if token.kind is not MLTokKind.EOF:
            self.pos += 1
        return token

    def expect_punct(self, text: str) -> MLToken:
        token = self.advance()
        if not token.is_punct(text):
            raise MLParseError(f"expected `{text}`, found `{token}`", token.span)
        return token

    def at_eof(self) -> bool:
        return self.peek().kind is MLTokKind.EOF

    # -- top level -----------------------------------------------------------------

    def parse_unit(self) -> MLUnit:
        unit = MLUnit(filename=self.source.filename)
        while not self.at_eof():
            token = self.peek()
            if token.is_kw("type") or token.is_kw("and"):
                self.advance()
                unit.types.append(self._parse_type_decl())
            elif token.is_kw("external"):
                self.advance()
                unit.externals.append(self._parse_external())
            else:
                self._skip_item()
        return unit

    def _skip_item(self) -> None:
        """Skip a top-level item we do not model, with bracket balancing."""
        self.advance()
        depth = 0
        while not self.at_eof():
            token = self.peek()
            if depth == 0 and (
                token.is_kw(*_TOP_KEYWORDS) or token.is_punct(";;")
            ):
                if token.is_punct(";;"):
                    self.advance()
                return
            if token.is_punct("(", "[", "{"):
                depth += 1
            elif token.is_punct(")", "]", "}"):
                depth = max(0, depth - 1)
            self.advance()

    # -- type declarations -------------------------------------------------------------

    def _parse_type_decl(self) -> TypeDecl:
        start = self.peek().span
        params: list[str] = []
        if self.peek().kind is MLTokKind.TYVAR:
            params.append(self.advance().text)
        elif self.peek().is_punct("("):
            self.advance()
            while True:
                token = self.advance()
                if token.kind is MLTokKind.TYVAR:
                    params.append(token.text)
                if self.peek().is_punct(","):
                    self.advance()
                    continue
                break
            self.expect_punct(")")
        name_token = self.advance()
        if name_token.kind is not MLTokKind.LIDENT:
            raise MLParseError(
                f"expected type name, found `{name_token}`", name_token.span
            )
        if not self.peek().is_punct("="):
            return TypeDecl(
                name=name_token.text, params=tuple(params), body=None, span=start
            )
        self.advance()  # =
        # `type t = private ...` / re-exported definitions
        if self.peek().is_kw("private"):
            self.advance()
        body = self._parse_type_rhs()
        return TypeDecl(
            name=name_token.text, params=tuple(params), body=body, span=start
        )

    def _parse_type_rhs(self) -> MLSrcType:
        token = self.peek()
        if token.is_punct("{"):
            return self._parse_record()
        if token.is_punct("|") or self._looks_like_variant():
            return self._parse_variant()
        return self.parse_type_expr()

    def _looks_like_variant(self) -> bool:
        token = self.peek()
        if token.kind is not MLTokKind.UIDENT:
            return False
        after = self.peek(1)
        # `A of ...` or `A | ...` or a bare single constructor; a UIDENT
        # followed by `.`-path is impossible (lexer merges dotted names).
        return after.is_kw("of") or after.is_punct("|") or self._is_decl_end(after)

    @staticmethod
    def _is_decl_end(token: MLToken) -> bool:
        return (
            token.kind is MLTokKind.EOF
            or token.is_punct(";;")
            or token.is_kw("and", *_TOP_KEYWORDS)
        )

    def _parse_variant(self) -> MLSrcType:
        constructors: list[SConstructor] = []
        if self.peek().is_punct("|"):
            self.advance()
        while True:
            name_token = self.advance()
            if name_token.kind is not MLTokKind.UIDENT:
                raise MLParseError(
                    f"expected constructor, found `{name_token}`", name_token.span
                )
            args: tuple[MLSrcType, ...] = ()
            if self.peek().is_kw("of"):
                # `C of a * b` has two fields; `C of (a * b)` has ONE tuple
                # field — physically a block holding a pointer to a block.
                self.advance()
                arg_list = [self._parse_app_type()]
                while self.peek().is_punct("*"):
                    self.advance()
                    arg_list.append(self._parse_app_type())
                args = tuple(arg_list)
            constructors.append(SConstructor(name=name_token.text, args=args))
            if self.peek().is_punct("|"):
                self.advance()
                continue
            break
        from ..core.srctypes import SSum

        return SSum(constructors=tuple(constructors))

    def _parse_record(self) -> MLSrcType:
        self.expect_punct("{")
        fields: list[SField] = []
        while not self.peek().is_punct("}"):
            mutable = False
            if self.peek().is_kw("mutable"):
                self.advance()
                mutable = True
            name_token = self.advance()
            self.expect_punct(":")
            ftype = self.parse_type_expr()
            fields.append(
                SField(name=name_token.text, type=ftype, mutable=mutable)
            )
            if self.peek().is_punct(";"):
                self.advance()
        self.expect_punct("}")
        return SRecord(fields=tuple(fields))

    # -- externals ----------------------------------------------------------------------

    def _parse_external(self) -> ExternalDecl:
        start = self.peek().span
        name_token = self.advance()
        self.expect_punct(":")
        mltype = self.parse_type_expr()
        self.expect_punct("=")
        strings: list[str] = []
        while self.peek().kind is MLTokKind.STRING:
            strings.append(self.advance().text)
        if not strings:
            raise MLParseError("external lacks a C name", self.peek().span)
        c_names = [s for s in strings if not s.startswith("%")]
        attrs = tuple(
            s for s in strings[1:] if s in ("noalloc", "float", "unboxed")
        )
        real_names = [s for s in c_names if s not in attrs]
        c_name = real_names[0] if real_names else strings[0]
        bytecode = real_names[1] if len(real_names) > 1 else None
        return ExternalDecl(
            ml_name=name_token.text,
            mltype=mltype,
            c_name=c_name,
            c_name_bytecode=bytecode,
            attributes=attrs,
            span=start,
        )

    # -- type expressions ------------------------------------------------------------------

    def parse_type_expr(self, no_arrow: bool = False) -> MLSrcType:
        left = self._parse_tuple_type()
        if not no_arrow and self.peek().is_punct("->"):
            self.advance()
            right = self.parse_type_expr()
            return SArrow(param=left, result=right)
        return left

    def _parse_tuple_type(self) -> MLSrcType:
        parts = [self._parse_app_type()]
        while self.peek().is_punct("*"):
            self.advance()
            parts.append(self._parse_app_type())
        if len(parts) == 1:
            return parts[0]
        return STuple(elems=tuple(parts))

    def _parse_app_type(self) -> MLSrcType:
        atom = self._parse_atom_type()
        # postfix constructor application: int list, int option array ...
        while self.peek().kind is MLTokKind.LIDENT and not self.peek().is_kw(
            "of", "mutable", "private", "and", *_TOP_KEYWORDS
        ):
            name = self.advance().text
            atom = SConstrApp(name=name, args=(atom,))
        return atom

    def _parse_atom_type(self) -> MLSrcType:
        token = self.advance()
        # optional/labelled arguments: ?label: / label: — skip the label
        if token.is_punct("?", "~"):
            token = self.advance()  # the label
            if self.peek().is_punct(":"):
                self.advance()
            token = self.advance()
        if token.kind is MLTokKind.TYVAR:
            return SVar(name=token.text)
        if token.kind is MLTokKind.LIDENT:
            builtin = _BUILTIN_ATOMS.get(token.text)
            if builtin is not None:
                return builtin
            return SConstrApp(name=token.text)
        if token.kind is MLTokKind.UIDENT:
            # bare module-ish name used as a type (unusual) — opaque
            return SConstrApp(name=token.text)
        if token.is_punct("("):
            first = self.parse_type_expr()
            args = [first]
            while self.peek().is_punct(","):
                self.advance()
                args.append(self.parse_type_expr())
            self.expect_punct(")")
            if len(args) > 1 or (
                self.peek().kind is MLTokKind.LIDENT
                and not self.peek().is_kw(*_TOP_KEYWORDS)
            ):
                name = self.advance().text
                return SConstrApp(name=name, args=tuple(args))
            return first
        if token.is_punct("[", "[<", "[>"):
            return self._parse_poly_variant(token)
        if token.is_punct("<"):
            # object type — skip to matching '>' and treat as opaque
            depth = 1
            while depth and not self.at_eof():
                inner = self.advance()
                if inner.is_punct("<"):
                    depth += 1
                elif inner.is_punct(">"):
                    depth -= 1
            from ..core.srctypes import SOpaque

            return SOpaque(name="object")
        raise MLParseError(f"unexpected token `{token}` in type", token.span)

    def _parse_poly_variant(self, open_token: MLToken) -> MLSrcType:
        tags: list[SConstructor] = []
        while not self.peek().is_punct("]"):
            if self.at_eof():
                raise MLParseError("unterminated variant type", open_token.span)
            token = self.advance()
            if token.is_punct("`"):
                name_token = self.advance()
                args: tuple[MLSrcType, ...] = ()
                if self.peek().is_kw("of"):
                    self.advance()
                    arg = self.parse_type_expr(no_arrow=True)
                    args = arg.elems if isinstance(arg, STuple) else (arg,)
                tags.append(SConstructor(name=name_token.text, args=args))
        self.expect_punct("]")
        return SPolyVariant(tags=tuple(tags))


def parse_ml(source: SourceFile) -> MLUnit:
    return MLParser(source).parse_unit()


def parse_ml_text(text: str, filename: str = "<string>") -> MLUnit:
    return parse_ml(SourceFile(filename, text))


def parse_type_text(text: str) -> MLSrcType:
    """Parse a standalone OCaml type expression (handy in tests)."""
    parser = MLParser(SourceFile("<type>", text))
    return parser.parse_type_expr()
