"""Tokenizer for the OCaml subset (type and external declarations).

The first tool of the paper (§5.1) is a camlp4 preprocessor that only
consumes type information; accordingly this lexer handles exactly the
surface needed for ``type`` and ``external`` declarations plus enough
structure to skip over everything else (let bindings, modules, ...).
OCaml comments ``(* ... *)`` nest and are stripped here.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from ..source import SourceFile, Span


class MLTokKind(enum.Enum):
    LIDENT = "lident"  # lowercase identifier (possibly dotted: Unix.t)
    UIDENT = "uident"  # capitalized identifier
    TYVAR = "tyvar"  # 'a
    STRING = "string"
    INT = "int"
    PUNCT = "punct"
    EOF = "eof"


@dataclass(frozen=True)
class MLToken:
    kind: MLTokKind
    text: str
    span: Span

    def is_punct(self, *texts: str) -> bool:
        return self.kind is MLTokKind.PUNCT and self.text in texts

    def is_kw(self, *texts: str) -> bool:
        return self.kind is MLTokKind.LIDENT and self.text in texts

    def __str__(self) -> str:
        return self.text or "<eof>"


class MLLexError(Exception):
    def __init__(self, message: str, span: Span):
        self.span = span
        super().__init__(f"{span}: {message}")


_PUNCTS = [
    "->", ":=", "::", ";;", "[<", "[>", "[|", "|]",
    "=", "|", "*", ":", ";", ",", "(", ")", "{", "}", "[", "]",
    "<", ">", "?", "~", ".", "'", "`", "#", "&", "!", "@", "^", "-", "+", "/",
]

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_']*")
#: type-variable names exclude the prime (it would swallow char literals)
_TYVAR_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_INT_RE = re.compile(r"[0-9][0-9_]*")


class MLLexer:
    def __init__(self, source: SourceFile):
        self.source = source
        self.text = source.text
        self.pos = 0

    def tokenize(self) -> list[MLToken]:
        tokens: list[MLToken] = []
        while True:
            self._skip_trivia()
            if self.pos >= len(self.text):
                break
            tokens.append(self._next_token())
        tokens.append(MLToken(MLTokKind.EOF, "", self.source.span(self.pos, self.pos)))
        return tokens

    def _skip_trivia(self) -> None:
        while self.pos < len(self.text):
            char = self.text[self.pos]
            if char in " \t\r\n":
                self.pos += 1
            elif self.text.startswith("(*", self.pos):
                self._skip_comment()
            else:
                return

    def _skip_comment(self) -> None:
        start = self.pos
        depth = 0
        while self.pos < len(self.text):
            if self.text.startswith("(*", self.pos):
                depth += 1
                self.pos += 2
            elif self.text.startswith("*)", self.pos):
                depth -= 1
                self.pos += 2
                if depth == 0:
                    return
            else:
                self.pos += 1
        raise MLLexError(
            "unterminated comment", self.source.span(start, len(self.text))
        )

    def _next_token(self) -> MLToken:
        start = self.pos
        char = self.text[start]

        if char == "'":
            # char literal 'x' / '\n', else a type variable 'a
            if (
                start + 2 < len(self.text)
                and self.text[start + 1] != "\\"
                and self.text[start + 2] == "'"
            ):
                self.pos = start + 3
                return MLToken(
                    MLTokKind.INT,
                    str(ord(self.text[start + 1])),
                    self.source.span(start, self.pos),
                )
            if (
                start + 3 < len(self.text)
                and self.text[start + 1] == "\\"
                and self.text[start + 3] == "'"
            ):
                escapes = {"n": "\n", "t": "\t", "r": "\r", "0": "\0"}
                literal = escapes.get(
                    self.text[start + 2], self.text[start + 2]
                )
                self.pos = start + 4
                return MLToken(
                    MLTokKind.INT,
                    str(ord(literal)),
                    self.source.span(start, self.pos),
                )
            if match := _TYVAR_RE.match(self.text, start + 1):
                self.pos = match.end()
                return MLToken(
                    MLTokKind.TYVAR,
                    match.group(),
                    self.source.span(start, self.pos),
                )

        if match := _IDENT_RE.match(self.text, start):
            self.pos = match.end()
            name = match.group()
            # dotted paths: Unix.file_descr, Buffer.t
            while (
                self.pos < len(self.text)
                and self.text[self.pos] == "."
                and (next_m := _IDENT_RE.match(self.text, self.pos + 1))
            ):
                name += "." + next_m.group()
                self.pos = next_m.end()
            kind = (
                MLTokKind.UIDENT
                if name[0].isupper() and "." not in name
                else MLTokKind.LIDENT
            )
            return MLToken(kind, name, self.source.span(start, self.pos))

        if match := _INT_RE.match(self.text, start):
            self.pos = match.end()
            return MLToken(
                MLTokKind.INT,
                match.group().replace("_", ""),
                self.source.span(start, self.pos),
            )

        if char == '"':
            return self._string_token(start)

        for punct in _PUNCTS:
            if self.text.startswith(punct, start):
                self.pos = start + len(punct)
                return MLToken(
                    MLTokKind.PUNCT, punct, self.source.span(start, self.pos)
                )

        raise MLLexError(
            f"unexpected character {char!r}", self.source.span(start, start + 1)
        )

    def _string_token(self, start: int) -> MLToken:
        pos = start + 1
        chars: list[str] = []
        while pos < len(self.text):
            char = self.text[pos]
            if char == "\\" and pos + 1 < len(self.text):
                chars.append(self.text[pos + 1])
                pos += 2
            elif char == '"':
                self.pos = pos + 1
                return MLToken(
                    MLTokKind.STRING,
                    "".join(chars),
                    self.source.span(start, self.pos),
                )
            else:
                chars.append(char)
                pos += 1
        raise MLLexError(
            "unterminated string", self.source.span(start, len(self.text))
        )


def tokenize_ml(source: SourceFile) -> list[MLToken]:
    return MLLexer(source).tokenize()
