"""Tokenizer for the OCaml subset (type and external declarations).

The first tool of the paper (§5.1) is a camlp4 preprocessor that only
consumes type information; accordingly this lexer handles exactly the
surface needed for ``type`` and ``external`` declarations plus enough
structure to skip over everything else (let bindings, modules, ...).
OCaml comments ``(* ... *)`` nest and are stripped here.

Like :mod:`repro.cfront.lexer`, the scanner is one compiled master regex
driven in a single pass with incremental line/column tracking; only the
nested comments fall back to a pointer loop (nesting is not regular).
"""

from __future__ import annotations

import enum
import re

from ..source import Position, SourceFile, Span


class MLTokKind(enum.Enum):
    LIDENT = "lident"  # lowercase identifier (possibly dotted: Unix.t)
    UIDENT = "uident"  # capitalized identifier
    TYVAR = "tyvar"  # 'a
    STRING = "string"
    INT = "int"
    PUNCT = "punct"
    EOF = "eof"


class MLToken:
    """One lexeme; a plain slotted class (immutable by convention)."""

    __slots__ = ("kind", "text", "span")

    def __init__(self, kind: MLTokKind, text: str, span: Span):
        self.kind = kind
        self.text = text
        self.span = span

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, MLToken)
            and self.kind is other.kind
            and self.text == other.text
            and self.span == other.span
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.text, self.span))

    def __repr__(self) -> str:
        return f"MLToken({self.kind!r}, {self.text!r}, {self.span!r})"

    def is_punct(self, *texts: str) -> bool:
        return self.kind is MLTokKind.PUNCT and self.text in texts

    def is_kw(self, *texts: str) -> bool:
        return self.kind is MLTokKind.LIDENT and self.text in texts

    def __str__(self) -> str:
        return self.text or "<eof>"


class MLLexError(Exception):
    def __init__(self, message: str, span: Span):
        self.span = span
        super().__init__(f"{span}: {message}")


_PUNCTS = [
    "->", ":=", "::", ";;", "[<", "[>", "[|", "|]",
    "=", "|", "*", ":", ";", ",", "(", ")", "{", "}", "[", "]",
    "<", ">", "?", "~", ".", "'", "`", "#", "&", "!", "@", "^", "-", "+", "/",
]

#: One alternation covering the whole ML token grammar.  Order encodes the
#: old scanner's priorities: a char literal beats a type variable beats the
#: bare ``'`` punctuator; comments are handled out-of-band (they nest).
_MASTER_RE = re.compile(
    r"""
      (?P<WS>[ \t\r\n]+)
    | (?P<COMMENT>\(\*)
    | (?P<CHARLIT>'[^\\]')
    | (?P<CHARESC>'\\.')
    | (?P<TYVAR>'[A-Za-z_][A-Za-z0-9_]*)
    | (?P<IDENT>[A-Za-z_][A-Za-z0-9_']*(?:\.[A-Za-z_][A-Za-z0-9_']*)*)
    | (?P<INT>[0-9][0-9_]*)
    | (?P<STRING>"(?:\\.|[^"\\])*")
    | (?P<PUNCT>%s)
    | (?P<BADSTRING>")
    """
    % "|".join(re.escape(p) for p in _PUNCTS),
    re.VERBOSE | re.DOTALL,
)

_CHAR_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0"}

#: OCaml string escapes keep the escaped character verbatim (the paper's
#: front end only needs C symbol names out of ``external`` strings).
_STRING_ESCAPE_RE = re.compile(r"\\(.)", re.DOTALL)


class MLLexer:
    def __init__(self, source: SourceFile):
        self.source = source
        self.text = source.text
        self.pos = 0

    def tokenize(self) -> list[MLToken]:
        source = self.source
        text = self.text
        length = len(text)
        filename = source.filename
        tokens: list[MLToken] = []
        append = tokens.append
        scan = _MASTER_RE.match
        count_nl = text.count
        line = 1
        line_start = 0
        pos = 0
        while pos < length:
            match = scan(text, pos)
            if match is None:
                raise MLLexError(
                    f"unexpected character {text[pos]!r}",
                    source.span(pos, pos + 1),
                )
            kind = match.lastgroup
            end = match.end()
            if kind == "WS":
                newlines = count_nl("\n", pos, end)
                if newlines:
                    line += newlines
                    line_start = text.rfind("\n", pos, end) + 1
                pos = end
                continue
            if kind == "COMMENT":
                end = self._skip_comment(pos)
                newlines = count_nl("\n", pos, end)
                if newlines:
                    line += newlines
                    line_start = text.rfind("\n", pos, end) + 1
                pos = end
                continue
            if kind == "IDENT":
                name = match.group()
                span = Span(
                    filename,
                    Position(pos, line, pos - line_start + 1),
                    Position(end, line, end - line_start + 1),
                )
                token_kind = (
                    MLTokKind.UIDENT
                    if name[0].isupper() and "." not in name
                    else MLTokKind.LIDENT
                )
                append(MLToken(token_kind, name, span))
                pos = end
                continue
            if kind == "PUNCT":
                span = Span(
                    filename,
                    Position(pos, line, pos - line_start + 1),
                    Position(end, line, end - line_start + 1),
                )
                append(MLToken(MLTokKind.PUNCT, match.group(), span))
                pos = end
                continue
            if kind == "INT":
                span = Span(
                    filename,
                    Position(pos, line, pos - line_start + 1),
                    Position(end, line, end - line_start + 1),
                )
                append(
                    MLToken(MLTokKind.INT, match.group().replace("_", ""), span)
                )
                pos = end
                continue
            if kind == "CHARLIT" or kind == "CHARESC":
                start_pos = Position(pos, line, pos - line_start + 1)
                newlines = count_nl("\n", pos, end)
                if newlines:
                    line += newlines
                    line_start = text.rfind("\n", pos, end) + 1
                span = Span(
                    filename, start_pos, Position(end, line, end - line_start + 1)
                )
                raw = match.group()
                if kind == "CHARLIT":
                    value = ord(raw[1])
                else:
                    value = ord(_CHAR_ESCAPES.get(raw[2], raw[2]))
                append(MLToken(MLTokKind.INT, str(value), span))
                pos = end
                continue
            if kind == "TYVAR":
                span = Span(
                    filename,
                    Position(pos, line, pos - line_start + 1),
                    Position(end, line, end - line_start + 1),
                )
                append(MLToken(MLTokKind.TYVAR, match.group()[1:], span))
                pos = end
                continue
            if kind == "STRING":
                start_pos = Position(pos, line, pos - line_start + 1)
                newlines = count_nl("\n", pos, end)
                if newlines:
                    line += newlines
                    line_start = text.rfind("\n", pos, end) + 1
                span = Span(
                    filename, start_pos, Position(end, line, end - line_start + 1)
                )
                raw = match.group()
                append(
                    MLToken(
                        MLTokKind.STRING,
                        _STRING_ESCAPE_RE.sub(r"\1", raw[1:-1]),
                        span,
                    )
                )
                pos = end
                continue
            # BADSTRING
            raise MLLexError(
                "unterminated string", source.span(pos, length)
            )
        self.pos = length
        eof_position = Position(length, line, length - line_start + 1)
        append(MLToken(MLTokKind.EOF, "", Span(filename, eof_position, eof_position)))
        return tokens

    def _skip_comment(self, start: int) -> int:
        """Skip a nested ``(* ... *)`` comment; returns the end offset."""
        text = self.text
        length = len(text)
        depth = 1
        pos = start + 2
        while pos < length:
            open_index = text.find("(*", pos)
            close_index = text.find("*)", pos)
            if close_index == -1:
                break
            if open_index != -1 and open_index < close_index:
                depth += 1
                pos = open_index + 2
            else:
                depth -= 1
                pos = close_index + 2
                if depth == 0:
                    return pos
        raise MLLexError(
            "unterminated comment", self.source.span(start, length)
        )


def tokenize_ml(source: SourceFile) -> list[MLToken]:
    return MLLexer(source).tokenize()
