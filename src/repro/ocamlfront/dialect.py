"""The OCaml-to-C FFI as a :class:`~repro.boundary.BoundaryDialect`.

This is the paper's original configuration, repackaged: ``Γ_I`` comes from
``external`` declarations in ``.ml``/``.mli`` sources via ``Φ``, the
runtime table is ``caml/mlvalues.h``'s entry points, and the protection
discipline is ``CAMLparam``/``CAMLlocal``/``CAMLreturn``.

Because every unit in a batch usually shares the same OCaml side, the
*repository* is memoized per process by content fingerprint; ``Γ_I``
itself is rebuilt per unit so fresh inference variables never leak between
units (the unifier must not see another unit's bindings).
"""

from __future__ import annotations

from ..boundary import DialectSpec, register_dialect
from ..cfront.ir import ProgramIR
from ..cfront.lexer import scan_includes
from ..cfront.lower import lower_unit
from ..cfront.macros import (
    ALLOC_RESULT_TAG,
    POLYMORPHIC_BUILTINS,
    builtin_entries,
)
from ..cfront.parser import parse_c
from ..core.checker import AnalysisReport, Checker, InitialEnv
from ..core.environment import Entry
from ..engine.jobs import CheckRequest, repository_fingerprint
from ..linker.extract import summarize_units
from ..seeds import HostSeedMemo
from ..telemetry import span as _tspan
from ..linker.summary import InterfaceSummary, SymbolRow
from .repository import TypeRepository, build_initial_env

#: Shared memo for parsed repositories: in-process table over the seed
#: artifact tier over rebuild (see :mod:`repro.seeds`).  A fresh worker
#: process unpickles the repository a sibling already parsed instead of
#: re-deriving it from the ``.ml`` sources.
_REPOSITORY_SEEDS = HostSeedMemo("ocaml")


class OCamlDialect:
    """The paper's OCaml FFI boundary."""

    name = "ocaml"
    host_suffixes = (".ml", ".mli")
    unit_suffixes = (".c", ".h")
    #: only .c files are scanned as standalone units; headers reach
    #: the analysis as dependencies of their includers
    corpus_unit_suffixes = (".c",)

    # -- seeds ---------------------------------------------------------------

    def builtin_entries(self) -> dict[str, Entry]:
        return builtin_entries()

    def polymorphic_builtins(self) -> frozenset[str]:
        return POLYMORPHIC_BUILTINS

    def global_entries(self) -> dict[str, Entry]:
        return {}

    def alloc_result_tags(self) -> dict[str, int | str]:
        return dict(ALLOC_RESULT_TAG)

    # -- phases --------------------------------------------------------------

    def repository_for(self, request: CheckRequest) -> TypeRepository:
        fingerprint = repository_fingerprint(request.ocaml_sources)

        def build() -> TypeRepository:
            repo = TypeRepository.with_stdlib()
            for source in request.ocaml_sources:
                repo.add_source(source)
            return repo

        return _REPOSITORY_SEEDS.get(fingerprint, build)

    #: the seed-warmup entry point (same contract for every dialect
    #: with a parsed host side; see :func:`repro.seeds.warmup_hosts`)
    host_interface_for = repository_for

    def initial_env(self, request: CheckRequest) -> InitialEnv:
        return build_initial_env(self.repository_for(request))

    def analyze(self, request: CheckRequest) -> AnalysisReport:
        with _tspan("initial-env", cat="phase"):
            initial_env = self.initial_env(request)
        units = [parse_c(source) for source in request.c_sources]
        with _tspan("lower", cat="phase"):
            program = ProgramIR()
            for unit in units:
                program = program.merge(lower_unit(unit))
        report = Checker(
            program, initial_env, request.options, dialect=self
        ).run()
        with _tspan("summarize", cat="phase"):
            report.summary = self.summarize(request, units).to_dict()
        return report

    def summarize(self, request: CheckRequest, units) -> InterfaceSummary:
        """Link-relevant slice: C exports/externs plus the ``external``
        bindings of the (shared) host side."""
        summary = InterfaceSummary(unit=request.name, dialect=self.name)
        ignore = frozenset(builtin_entries()) | POLYMORPHIC_BUILTINS
        summarize_units(summary, units, ignore=ignore)
        for external in self.repository_for(request).externals:
            for c_name in (external.c_name, external.c_name_bytecode):
                if not c_name:
                    continue
                summary.bindings.append(
                    SymbolRow(
                        symbol=c_name,
                        file=external.span.filename,
                        line=external.span.start.line,
                        detail=(
                            f"external {external.ml_name} : "
                            f"{external.mltype}"
                        ),
                    )
                )
        return summary

    def unit_dependencies(self, request: CheckRequest) -> tuple[str, ...]:
        """Every ``Γ_I`` input plus the unit's quoted includes: an edit to
        any ``.ml``/``.mli`` rebuilds the shared repository, so every unit
        depends on the whole host side."""
        deps: dict[str, None] = {}
        for source in request.ocaml_sources:
            deps.setdefault(source.filename)
        for source in request.c_sources:
            for header in scan_includes(source.text):
                deps.setdefault(header)
        return tuple(deps)


OCAML_DIALECT = register_dialect(
    OCamlDialect(),
    DialectSpec(
        name="ocaml",
        host_suffixes=(".ml", ".mli"),
        unit_suffixes=(".c", ".h"),
        corpus_unit_suffixes=(".c",),
        example_dir="examples/glue",
        link_example_dir="examples/link/ocaml",
        bench_module="benchmarks/bench_fig9.py",
    ),
)
