"""The OCaml-to-C FFI as a :class:`~repro.boundary.BoundaryDialect`.

This is the paper's original configuration, repackaged: ``Γ_I`` comes from
``external`` declarations in ``.ml``/``.mli`` sources via ``Φ``, the
runtime table is ``caml/mlvalues.h``'s entry points, and the protection
discipline is ``CAMLparam``/``CAMLlocal``/``CAMLreturn``.

Because every unit in a batch usually shares the same OCaml side, the
*repository* is memoized per process by content fingerprint; ``Γ_I``
itself is rebuilt per unit so fresh inference variables never leak between
units (the unifier must not see another unit's bindings).
"""

from __future__ import annotations

from ..boundary import register_dialect
from ..cfront.ir import ProgramIR
from ..cfront.lexer import scan_includes
from ..cfront.lower import lower_unit
from ..cfront.macros import (
    ALLOC_RESULT_TAG,
    POLYMORPHIC_BUILTINS,
    builtin_entries,
)
from ..cfront.parser import parse_c
from ..core.checker import AnalysisReport, Checker, InitialEnv
from ..core.environment import Entry
from ..engine.jobs import CheckRequest, repository_fingerprint
from .repository import TypeRepository, build_initial_env

#: Per-process memo: repository fingerprint -> parsed TypeRepository.
#: Bounded (batches reuse one or two OCaml sides); reset on process exit.
_REPOSITORY_MEMO: dict[str, TypeRepository] = {}
_REPOSITORY_MEMO_LIMIT = 32


class OCamlDialect:
    """The paper's OCaml FFI boundary."""

    name = "ocaml"
    host_suffixes = (".ml", ".mli")
    unit_suffixes = (".c", ".h")

    # -- seeds ---------------------------------------------------------------

    def builtin_entries(self) -> dict[str, Entry]:
        return builtin_entries()

    def polymorphic_builtins(self) -> frozenset[str]:
        return POLYMORPHIC_BUILTINS

    def global_entries(self) -> dict[str, Entry]:
        return {}

    def alloc_result_tags(self) -> dict[str, int | str]:
        return dict(ALLOC_RESULT_TAG)

    # -- phases --------------------------------------------------------------

    def repository_for(self, request: CheckRequest) -> TypeRepository:
        fingerprint = repository_fingerprint(request.ocaml_sources)
        repo = _REPOSITORY_MEMO.get(fingerprint)
        if repo is None:
            repo = TypeRepository.with_stdlib()
            for source in request.ocaml_sources:
                repo.add_source(source)
            if len(_REPOSITORY_MEMO) >= _REPOSITORY_MEMO_LIMIT:
                _REPOSITORY_MEMO.clear()
            _REPOSITORY_MEMO[fingerprint] = repo
        return repo

    def initial_env(self, request: CheckRequest) -> InitialEnv:
        return build_initial_env(self.repository_for(request))

    def analyze(self, request: CheckRequest) -> AnalysisReport:
        initial_env = self.initial_env(request)
        program = ProgramIR()
        for source in request.c_sources:
            program = program.merge(lower_unit(parse_c(source)))
        return Checker(
            program, initial_env, request.options, dialect=self
        ).run()

    def unit_dependencies(self, request: CheckRequest) -> tuple[str, ...]:
        """Every ``Γ_I`` input plus the unit's quoted includes: an edit to
        any ``.ml``/``.mli`` rebuilds the shared repository, so every unit
        depends on the whole host side."""
        deps: dict[str, None] = {}
        for source in request.ocaml_sources:
            deps.setdefault(source.filename)
        for source in request.c_sources:
            for header in scan_includes(source.text):
                deps.setdefault(header)
        return tuple(deps)


OCAML_DIALECT = register_dialect(OCamlDialect())
