"""Declarations extracted from OCaml source.

Only two forms matter to the analysis (paper §3.1): type declarations —
needed to resolve the types mentioned by externals to concrete
representations — and ``external`` declarations, which are translated by
``Φ`` into the initial environment ``Γ_I``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..core.srctypes import MLSrcType
from ..source import DUMMY_SPAN, Span


@dataclass(frozen=True)
class TypeDecl:
    """``type ('a, 'b) name = body``; ``body`` None means abstract/opaque."""

    name: str
    params: Tuple[str, ...] = ()
    body: Optional[MLSrcType] = None
    span: Span = DUMMY_SPAN

    @property
    def is_opaque(self) -> bool:
        return self.body is None


@dataclass(frozen=True)
class ExternalDecl:
    """``external ml_name : mltype = "c_name" [attrs]``."""

    ml_name: str
    mltype: MLSrcType
    c_name: str
    #: second C name for arity>5 externals (bytecode stub), if any
    c_name_bytecode: Optional[str] = None
    attributes: Tuple[str, ...] = ()
    span: Span = DUMMY_SPAN

    @property
    def noalloc(self) -> bool:
        return "noalloc" in self.attributes


@dataclass
class MLUnit:
    """Everything extracted from one .ml/.mli file."""

    types: list[TypeDecl] = field(default_factory=list)
    externals: list[ExternalDecl] = field(default_factory=list)
    filename: str = "<unknown>"
