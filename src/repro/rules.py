"""The stable rule-ID registry — the public API of the diagnostic packs.

Four dialects accumulated diagnostic kinds organically (``PY_*``,
``JNI_*``, ``LINK_*``, ``RUST_*`` plus the paper's original taxonomy);
this module makes the surface first-class: every
:class:`~repro.diagnostics.Kind` registers exactly one :class:`Rule`
with a *stable* ID (the kind name, append-only and never renamed), a
default severity, a one-line summary, and guideline provenance — where
the rule comes from (the paper section, the CPython/JNI reference, the
Safety-Critical Rust Coding Guidelines' FFI chapter) and a help URI.

Consumers:

* :mod:`repro.sarif` emits its ``rules`` metadata (``helpUri``,
  ``properties.dialect``/``guideline``) from here instead of per-run
  ad-hoc dedup;
* ``mlffi-check rules`` lists the packs, ``mlffi-check conformance``
  groups batch/link results by rule with pass/fail counts;
* the server's ``rules`` RPC serves the same payload over the wire.

The registry is deterministic: rules order by dialect pack, then by
declaration order of the :class:`Kind` enum, so goldens stay stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from .diagnostics import Category, Kind

#: Guideline provenance anchors, one per source of truth.
PAPER_URI = "https://doi.org/10.1145/1065010.1065019"
CPYTHON_URI = "https://docs.python.org/3/c-api/intro.html"
JNI_URI = (
    "https://docs.oracle.com/en/java/javase/17/docs/specs/jni/design.html"
)
RUST_GUIDELINES_URI = (
    "https://coding-guidelines.arewesafetycriticalyet.org/"
    "coding-guidelines/ffi.html"
)
RUST_UB_STUDY_URI = "https://arxiv.org/abs/2404.11671"


@dataclass(frozen=True)
class Rule:
    """One stable reporting rule: the public face of a diagnostic kind."""

    id: str
    dialect: str
    category: Category
    summary: str
    #: where the rule comes from (paper section, guideline ID, API doc)
    guideline: str
    help_uri: str

    @property
    def kind(self) -> Kind:
        return Kind[self.id]

    def to_dict(self) -> dict:
        return {
            "id": self.id,
            "dialect": self.dialect,
            "severity": self.category.value,
            "sarif_level": self.category.sarif_level,
            "summary": self.summary,
            "guideline": self.guideline,
            "help_uri": self.help_uri,
        }


#: kind-name prefix -> (pack name, guideline provenance, help URI).
#: Longest matching prefix wins; kinds with no prefix match fall into the
#: paper's own pack (the ocaml dialect IS the paper's configuration).
_PACK_BY_PREFIX: tuple[tuple[str, str, str, str], ...] = (
    ("PY_", "pyext", "CPython C-API reference counting & argument "
     "parsing contracts", CPYTHON_URI),
    ("JNI_", "jni", "JNI 17 specification, design overview", JNI_URI),
    ("RUST_", "rust", "Safety-Critical Rust Coding Guidelines, FFI "
     "chapter (gui_QmEmKMYSuQSl: use matching type declarations at the "
     "language boundary); Rust-UB FFI study", RUST_GUIDELINES_URI),
    ("LINK_", "link", "whole-program boundary linking (cross-unit "
     "declaration agreement, paper §2 generalized)", PAPER_URI),
)

#: Per-rule guideline refinements where one line beats the pack default.
_GUIDELINE_OVERRIDES: dict[str, tuple[str, str]] = {
    "RUST_DECL_MISMATCH": (
        "gui_QmEmKMYSuQSl: use matching type declarations at the "
        "language boundary",
        RUST_GUIDELINES_URI,
    ),
    "RUST_PLATFORM_WIDTH": (
        "gui_QmEmKMYSuQSl non-compliant example: size_t vs int is "
        "platform-dependent; fixed and platform width classes must not "
        "be mixed across the boundary",
        RUST_GUIDELINES_URI,
    ),
    "RUST_PTR_INT_CONFUSION": (
        "Rust-UB FFI study: pointer/integer confusion across "
        "foreign-function boundaries",
        RUST_UB_STUDY_URI,
    ),
    "RUST_ENUM_REPR": (
        "Rust Reference: enums without an explicit repr have no "
        "ABI-stable layout and are not FFI-safe",
        RUST_GUIDELINES_URI,
    ),
    "RUST_STR_PASSING": (
        "Rust-UB FFI study: &str/String/&[T] are fat or non-C layouts; "
        "C expects a NUL-terminated pointer or pointer+length pair",
        RUST_UB_STUDY_URI,
    ),
}


def _pack_for(kind_name: str) -> tuple[str, str, str]:
    for prefix, pack, guideline, uri in _PACK_BY_PREFIX:
        if kind_name.startswith(prefix):
            return pack, guideline, uri
    return (
        "ocaml",
        "Furr & Foster, PLDI 2005 §5.2 (the paper's own taxonomy)",
        PAPER_URI,
    )


class RuleRegistry:
    """Stable-ID lookup over every registered rule, in pack order."""

    def __init__(self) -> None:
        self._rules: dict[str, Rule] = {}

    def register(self, rule: Rule) -> Rule:
        if rule.id in self._rules:
            raise ValueError(f"duplicate rule id `{rule.id}`")
        self._rules[rule.id] = rule
        return rule

    def get(self, rule_id: str) -> Rule:
        try:
            return self._rules[rule_id]
        except KeyError:
            known = ", ".join(sorted(self._rules))
            raise KeyError(
                f"unknown rule id `{rule_id}` (known: {known})"
            ) from None

    def for_kind(self, kind: Kind) -> Rule:
        return self.get(kind.name)

    def dialects(self) -> tuple[str, ...]:
        return tuple(
            sorted({rule.dialect for rule in self._rules.values()})
        )

    def pack(self, dialect: Optional[str] = None) -> tuple[Rule, ...]:
        """The rules of one dialect's pack (or every rule), in
        declaration order of the :class:`Kind` enum."""
        rules = [
            self._rules[kind.name]
            for kind in Kind
            if kind.name in self._rules
        ]
        if dialect is not None:
            rules = [rule for rule in rules if rule.dialect == dialect]
        return tuple(rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.pack())

    def __len__(self) -> int:
        return len(self._rules)

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules


def _build_registry() -> RuleRegistry:
    registry = RuleRegistry()
    for kind in Kind:
        pack, guideline, uri = _pack_for(kind.name)
        override = _GUIDELINE_OVERRIDES.get(kind.name)
        if override is not None:
            guideline, uri = override
        registry.register(
            Rule(
                id=kind.name,
                dialect=pack,
                category=kind.category,
                summary=kind.summary,
                guideline=guideline,
                help_uri=uri,
            )
        )
    return registry


#: The process-wide registry.  Every :class:`Kind` is registered at import
#: time, so a kind without a rule is unrepresentable.
REGISTRY: RuleRegistry = _build_registry()


def rule_for_kind(kind: Kind) -> Rule:
    """The registered rule behind one diagnostic kind."""
    return REGISTRY.for_kind(kind)


def rules_pack(dialect: Optional[str] = None) -> tuple[Rule, ...]:
    """The (optionally dialect-filtered) rule pack, in stable order."""
    return REGISTRY.pack(dialect)
