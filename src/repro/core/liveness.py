"""Backward live-variable analysis over the Figure 5 IR.

The (App) rule needs ``live(Γ)`` — the variables live at each call site —
to decide which heap pointers must have been registered with the garbage
collector before a call that may trigger a collection (paper §3.3.1 omits
the computation as standard; this is it).

``live_in[i]`` is the set of variables live immediately *before* statement
``i``; a call at statement ``i`` consults the set live immediately *after*
the call together with the call's own arguments.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cfront.ir import (
    CallExp,
    FunctionIR,
    MemLval,
    SAssign,
    SCamlReturn,
    SGoto,
    SIf,
    SIfIntTag,
    SIfSumTag,
    SIfUnboxed,
    SReturn,
    VarExp,
    expr_vars,
)


@dataclass(frozen=True)
class StmtFacts:
    """use/def/successors for one statement."""

    use: frozenset[str]
    defs: frozenset[str]
    succs: tuple[int, ...]


def statement_facts(fn: FunctionIR, index: int) -> StmtFacts:
    """use/def sets and successor indices of ``fn.body[index]``."""
    stmt = fn.body[index]
    fallthrough = index + 1
    use: set[str] = set()
    defs: set[str] = set()
    succs: list[int] = []

    if isinstance(stmt, SAssign):
        use |= expr_vars(stmt.rhs)
        if isinstance(stmt.lval, VarExp):
            defs.add(stmt.lval.name)
        elif isinstance(stmt.lval, MemLval):
            use |= expr_vars(stmt.lval.base)
        succs.append(fallthrough)
    elif isinstance(stmt, (SReturn, SCamlReturn)):
        use |= expr_vars(stmt.exp)
        # no successors: function exits
    elif isinstance(stmt, SGoto):
        succs.append(fn.label_index(stmt.label))
    elif isinstance(stmt, SIf):
        use |= expr_vars(stmt.cond)
        succs.extend((fn.label_index(stmt.label), fallthrough))
    elif isinstance(stmt, (SIfUnboxed, SIfSumTag, SIfIntTag)):
        use.add(stmt.var)
        succs.extend((fn.label_index(stmt.label), fallthrough))
    else:  # SNop
        succs.append(fallthrough)

    succs = [s for s in succs if 0 <= s < len(fn.body)]
    return StmtFacts(frozenset(use), frozenset(defs), tuple(succs))


@dataclass
class LivenessResult:
    """Live-in/live-out sets per statement index."""

    live_in: list[frozenset[str]]
    live_out: list[frozenset[str]]

    def live_after(self, index: int) -> frozenset[str]:
        return self.live_out[index]

    def live_before(self, index: int) -> frozenset[str]:
        return self.live_in[index]


def compute_liveness(fn: FunctionIR) -> LivenessResult:
    """Standard backward may-liveness to fixpoint."""
    count = len(fn.body)
    facts = [statement_facts(fn, i) for i in range(count)]
    live_in = [frozenset[str]()] * count
    live_out = [frozenset[str]()] * count

    # Predecessor map for a worklist seeded with all statements.
    preds: dict[int, list[int]] = {i: [] for i in range(count)}
    for i, fact in enumerate(facts):
        for succ in fact.succs:
            preds[succ].append(i)

    worklist = list(range(count))
    while worklist:
        index = worklist.pop()
        fact = facts[index]
        out: frozenset[str] = frozenset().union(
            *(live_in[s] for s in fact.succs)
        ) if fact.succs else frozenset()
        new_in = fact.use | (out - fact.defs)
        changed = out != live_out[index] or new_in != live_in[index]
        live_out[index] = out
        live_in[index] = new_in
        if changed:
            worklist.extend(preds[index])
    return LivenessResult(live_in, live_out)


def call_live_set(
    fn: FunctionIR, index: int, liveness: LivenessResult, call: CallExp
) -> frozenset[str]:
    """Variables whose values must survive the call at ``fn.body[index]``.

    Per the paper's (App) rule the protection requirement covers variables
    live at the call's program point; arguments themselves are consumed by
    the call (the callee copies them before any allocation in well-formed
    runtime usage only if registered — so we keep arguments in the set,
    matching the conservative reading of ``live(Γ)``).
    """
    return liveness.live_in[index] | expr_vars(call)
