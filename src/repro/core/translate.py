"""Type translation between the source languages and the multi-lingual types.

Implements paper Figure 4:

* ``rho`` — OCaml source types to extended OCaml types ``mt``.  Sums count
  their nullary constructors into ``Ψ`` and map each non-nullary
  constructor, in declaration order, to a product ``Π``; tuples and records
  become a boxed type with a single product; ``ref`` is a one-field boxed
  block; ``unit``/``int``/``bool``/``char`` are purely unboxed.
* ``phi`` — an ``external`` function type to the C function type its glue
  code must have: every argument and the result are passed at
  ``ρ(t) value`` and the effect is a fresh variable.
* ``eta`` — plain C source types to ``ct`` (paper §3.3.2): each syntactic
  ``value`` gets a fresh ``α value``.

Built-in OCaml types beyond Figure 1a follow the runtime representation
documented in the OCaml manual: ``string``/``float``/``int32``/``int64``/
``nativeint`` are boxed blocks with out-of-band tags, which we model as
:class:`~repro.core.types.MTCustom` wrapping a distinguished struct pointer
(their fields must not be accessed with ``Field``); ``option``/``list``/
``bool`` are ordinary sums; ``array`` is an open product.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from .srctypes import (
    CSrcFun,
    CSrcPtr,
    CSrcScalar,
    CSrcStruct,
    CSrcType,
    CSrcValue,
    CSrcVoid,
    MLSrcType,
    SArrow,
    SBool,
    SChar,
    SConstrApp,
    SFloat,
    SInt,
    SOpaque,
    SPolyVariant,
    SRecord,
    SString,
    SSum,
    STuple,
    SUnit,
    SVar,
    arrow_chain,
)
from .types import (
    BOOL_REPR,
    C_INT,
    C_VOID,
    CFun,
    CPtr,
    CStruct,
    CType,
    CValue,
    INT_REPR,
    MLType,
    MTArrow,
    MTCustom,
    MTRepr,
    MTVar,
    Pi,
    PsiConst,
    UNIT_REPR,
    closed_pi,
    closed_sigma,
    fresh_ctvar,
    fresh_gc,
    fresh_mt,
    fresh_pi_row,
)


class TranslationError(Exception):
    """An OCaml source type cannot be represented (e.g. unresolved name)."""


#: Distinguished struct names for boxed builtins with out-of-band tags.
BOXED_BUILTINS = {
    "string": "caml_string",
    "bytes": "caml_string",
    "float": "caml_float",
    "int32": "caml_int32",
    "int64": "caml_int64",
    "nativeint": "caml_nativeint",
}


def boxed_builtin(name: str) -> MLType:
    """The ``mt`` for a boxed builtin: opaque custom block."""
    return MTCustom(CPtr(CStruct(BOXED_BUILTINS[name])))


@dataclass
class Translator:
    """Stateful ``ρ`` with named-type resolution and recursion cut-off.

    ``resolve`` maps a type-constructor application (name, args) to its
    definition body, or ``None`` when unknown.  Recursive occurrences are
    translated as fresh unconstrained variables, a deliberate
    approximation: it can miss errors inside the recursive knot but never
    invents one (see DESIGN.md).
    """

    resolve: Optional[
        Callable[[str, tuple[MLSrcType, ...]], Optional[MLSrcType]]
    ] = None
    on_poly_variant: Optional[Callable[[SPolyVariant], None]] = None
    #: hidden representations of opaque types, shared across a whole
    #: project so every external agrees on what each abstract type hides
    opaque_reprs: dict[str, MLType] = field(default_factory=dict)
    _in_progress: set[str] = field(default_factory=set)
    _tyvars: dict[str, MTVar] = field(default_factory=dict)

    def _opaque(self, name: str) -> MLType:
        """An abstract type hides an unknown C representation: a fresh C
        type variable, pinned by the first cast the glue code performs."""
        if name not in self.opaque_reprs:
            self.opaque_reprs[name] = MTCustom(fresh_ctvar(name))
        return self.opaque_reprs[name]

    # -- rho -----------------------------------------------------------------

    def rho(self, mltype: MLSrcType) -> MLType:
        """Paper Figure 4's ``ρ``: OCaml source type to ``mt``."""
        if isinstance(mltype, SUnit):
            return UNIT_REPR
        if isinstance(mltype, (SInt, SChar)):
            return INT_REPR
        if isinstance(mltype, SBool):
            return BOOL_REPR
        if isinstance(mltype, (SString, SFloat)):
            name = "string" if isinstance(mltype, SString) else "float"
            return boxed_builtin(name)
        if isinstance(mltype, SVar):
            return self._tyvar(mltype.name)
        if isinstance(mltype, SArrow):
            return MTArrow(self.rho(mltype.param), self.rho(mltype.result))
        if isinstance(mltype, STuple):
            return MTRepr(
                psi=PsiConst(0),
                sigma=closed_sigma([closed_pi([self.rho(e) for e in mltype.elems])]),
            )
        if isinstance(mltype, SRecord):
            return MTRepr(
                psi=PsiConst(0),
                sigma=closed_sigma(
                    [closed_pi([self.rho(f.type) for f in mltype.fields])]
                ),
            )
        if isinstance(mltype, SSum):
            return self._rho_sum(mltype)
        if isinstance(mltype, SConstrApp):
            return self._rho_constr_app(mltype)
        if isinstance(mltype, SPolyVariant):
            if self.on_poly_variant is not None:
                self.on_poly_variant(mltype)
            # Unsupported: leave it unconstrained so later unifications
            # neither succeed vacuously nor fail spuriously at this node.
            return fresh_mt("polyvariant")
        if isinstance(mltype, SOpaque):
            return self._opaque(mltype.name)
        raise TranslationError(f"cannot translate OCaml type `{mltype}`")

    def _rho_sum(self, sum_type: SSum) -> MLType:
        nullary = sum_type.nullary()
        products = [
            closed_pi([self.rho(arg) for arg in ctor.args])
            for ctor in sum_type.non_nullary()
        ]
        return MTRepr(psi=PsiConst(len(nullary)), sigma=closed_sigma(products))

    def _rho_constr_app(self, app: SConstrApp) -> MLType:
        if app.name == "ref" and len(app.args) == 1:
            # ρ(t ref) = (0, ρ(t)) — one non-nullary constructor of size 1.
            return MTRepr(
                psi=PsiConst(0),
                sigma=closed_sigma([closed_pi([self.rho(app.args[0])])]),
            )
        if app.name == "option" and len(app.args) == 1:
            # None | Some of t
            return MTRepr(
                psi=PsiConst(1),
                sigma=closed_sigma([closed_pi([self.rho(app.args[0])])]),
            )
        if app.name == "list" and len(app.args) == 1:
            # [] | (::) of t * t list — the tail is the recursive knot.
            key = self._recursion_key(app)
            if key in self._in_progress:
                return fresh_mt(f"rec:{app.name}")
            self._in_progress.add(key)
            try:
                head = self.rho(app.args[0])
                tail = self.rho(app)
            finally:
                self._in_progress.discard(key)
            return MTRepr(
                psi=PsiConst(1),
                sigma=closed_sigma([closed_pi([head, tail])]),
            )
        if app.name == "array" and len(app.args) == 1:
            # A boxed block of statically unknown arity; the element type
            # constrains index 0 and the row may grow per access site.
            elem = self.rho(app.args[0])
            return MTRepr(
                psi=PsiConst(0),
                sigma=closed_sigma([Pi(elems=(elem,), tail=fresh_pi_row().tail)]),
            )
        if app.name in BOXED_BUILTINS and not app.args:
            return boxed_builtin(app.name)
        if self.resolve is not None:
            key = self._recursion_key(app)
            if key in self._in_progress:
                return fresh_mt(f"rec:{app.name}")
            body = self.resolve(app.name, app.args)
            if body is not None:
                self._in_progress.add(key)
                try:
                    return self.rho(body)
                finally:
                    self._in_progress.discard(key)
        # Unknown named type: treat as opaque/abstract (paper §5.1 treats
        # hidden types as the types they hide *when available*).
        return self._opaque(app.name)

    @staticmethod
    def _recursion_key(app: SConstrApp) -> str:
        return f"{app.name}/{'/'.join(str(a) for a in app.args)}"

    def _tyvar(self, name: str) -> MTVar:
        if name not in self._tyvars:
            self._tyvars[name] = fresh_mt(f"'{name}")
        return self._tyvars[name]

    # -- phi -----------------------------------------------------------------

    def phi(self, mltype: MLSrcType, arity: Optional[int] = None) -> CFun:
        """Paper Figure 4's ``Φ``: an external's OCaml type to its C type.

        ``arity`` lets the caller stop uncurrying early when the external
        really returns a function value; by default every arrow is a
        parameter (the usual glue-code situation).
        """
        chain = arrow_chain(mltype)
        if len(chain) < 2:
            raise TranslationError(
                f"external type `{mltype}` is not a function type"
            )
        if arity is not None:
            if not 1 <= arity <= len(chain) - 1:
                raise TranslationError(
                    f"arity {arity} impossible for `{mltype}`"
                )
            params = chain[:arity]
            from .srctypes import make_arrows

            result: MLSrcType = make_arrows(chain[arity:-1], chain[-1])
        else:
            params, result = chain[:-1], chain[-1]
        return CFun(
            params=tuple(CValue(self.rho(p)) for p in params),
            result=CValue(self.rho(result)),
            effect=fresh_gc(),
        )


def eta(ctype: CSrcType) -> CType:
    """Paper §3.3.2's ``η``: surface C types to ``ct`` with fresh ``α value``."""
    if isinstance(ctype, CSrcVoid):
        return C_VOID
    if isinstance(ctype, CSrcScalar):
        return C_INT
    if isinstance(ctype, CSrcValue):
        return CValue(fresh_mt())
    if isinstance(ctype, CSrcPtr):
        return CPtr(eta(ctype.target))
    if isinstance(ctype, CSrcStruct):
        return CStruct(ctype.name)
    if isinstance(ctype, CSrcFun):
        return CFun(
            params=tuple(eta(p) for p in ctype.params),
            result=eta(ctype.result),
            effect=fresh_gc(),
        )
    raise TranslationError(f"cannot translate C type `{ctype}`")


def rho(mltype: MLSrcType) -> MLType:
    """Convenience: ``ρ`` with no named-type resolution."""
    return Translator().rho(mltype)


def phi(mltype: MLSrcType) -> CFun:
    """Convenience: ``Φ`` with no named-type resolution."""
    return Translator().phi(mltype)
