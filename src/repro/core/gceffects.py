"""Discharging the GC protection obligations (paper §3.3.1, (App) rule).

During inference every call site queues a :class:`PendingGCCheck` with the
variables live across the call.  Once effect constraints are solved by
reachability and unification is complete, this module walks the queue: for
each call that *may* collect, every live heap pointer — a variable of type
``(Ψ, Σ) value`` with ``|Σ| > 0`` — must have been registered with
``CAMLprotect``.  Violations are the paper's "forgot to register before
invoking the OCaml runtime" errors (3 of the 24 in Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..diagnostics import DiagnosticBag, Kind
from .constraints import EffectConstraintError, EffectConstraintStore
from .exprs import PendingGCCheck
from .unify import Unifier


@dataclass
class GCCheckSummary:
    """Statistics from discharging the queue (for reports and tests)."""

    checked_calls: int = 0
    gc_calls: int = 0
    violations: int = 0


def discharge_gc_checks(
    pending: list[PendingGCCheck],
    effects: EffectConstraintStore,
    unifier: Unifier,
    diagnostics: DiagnosticBag,
) -> GCCheckSummary:
    """Emit UNPROTECTED_VALUE errors for every violated obligation.

    One error is emitted per (function, variable) pair: an unregistered
    variable crossing several GC points is one bug, which is how the paper
    counts Figure 9 errors.
    """
    summary = GCCheckSummary()
    try:
        effects.solve()
    except EffectConstraintError:
        # No rule of ours constrains `gc ⊑ nogc`; reaching this means the
        # caller built constraints by hand.  Treat everything as may-GC.
        pass

    reported: set[tuple[str, str]] = set()
    for check in pending:
        summary.checked_calls += 1
        if not effects.may_gc(check.effect):
            continue
        summary.gc_calls += 1
        for name, ct in check.candidates:
            resolved = unifier.deep_resolve_ct(ct)
            if not unifier.is_heap_pointer_type(resolved):
                continue
            key = (check.function, name)
            if key in reported:
                continue
            reported.add(key)
            summary.violations += 1
            diagnostics.emit(
                Kind.UNPROTECTED_VALUE,
                check.span,
                f"`{name}` points into the OCaml heap and is live across the "
                f"call to `{check.callee}` (which may trigger the GC) but was "
                "never registered with CAMLparam/CAMLlocal",
                function=check.function,
            )
    return summary
