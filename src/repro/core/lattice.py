"""The flow-sensitive qualifier lattices of paper §3.3.

The analysis tracks, per local variable and flow-sensitively, a qualifier
triple ``[B{I}]{T}``:

* ``B`` — *boxedness*: ``⊥ ⊑ boxed ⊑ ⊤`` and ``⊥ ⊑ unboxed ⊑ ⊤``
  (``boxed`` and ``unboxed`` are incomparable),
* ``I`` — *offset* into a structured block: flat lattice ``⊥ ⊑ n ⊑ ⊤``,
* ``T`` — *tag or integer value*: flat lattice ``⊥ ⊑ n ⊑ ⊤``.

Arithmetic extends to the flat lattices pointwise with ``⊤ aop x = ⊤`` and
``⊥ aop x = ⊥`` (paper §3.3).  ``⊥`` means "unreachable"; ``reset`` after an
unconditional branch maps every qualifier to all-``⊥``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Union


class Boxedness(enum.Enum):
    """The four-point boxedness lattice ``B``."""

    BOTTOM = "⊥"
    BOXED = "boxed"
    UNBOXED = "unboxed"
    TOP = "⊤"

    def leq(self, other: "Boxedness") -> bool:
        if self is Boxedness.BOTTOM or other is Boxedness.TOP:
            return True
        return self is other

    def join(self, other: "Boxedness") -> "Boxedness":
        if self.leq(other):
            return other
        if other.leq(self):
            return self
        return Boxedness.TOP

    def meet(self, other: "Boxedness") -> "Boxedness":
        if self.leq(other):
            return self
        if other.leq(self):
            return other
        return Boxedness.BOTTOM

    def __str__(self) -> str:
        return self.value


BOT_B = Boxedness.BOTTOM
BOXED = Boxedness.BOXED
UNBOXED = Boxedness.UNBOXED
TOP_B = Boxedness.TOP


class _FlatExtreme(enum.Enum):
    BOTTOM = "⊥"
    TOP = "⊤"

    def __str__(self) -> str:
        return self.value


#: Elements of the flat lattices ``I`` and ``T``: an int, ``FLAT_TOP`` or
#: ``FLAT_BOT``.
FlatValue = Union[int, _FlatExtreme]

FLAT_BOT: FlatValue = _FlatExtreme.BOTTOM
FLAT_TOP: FlatValue = _FlatExtreme.TOP


def is_const(value: FlatValue) -> bool:
    """True when the lattice element is a known integer."""
    return isinstance(value, int)


def flat_leq(left: FlatValue, right: FlatValue) -> bool:
    """``⊑`` on the flat lattice ``⊥ ⊑ n ⊑ ⊤``."""
    if left is FLAT_BOT or right is FLAT_TOP:
        return True
    return left == right


def flat_join(left: FlatValue, right: FlatValue) -> FlatValue:
    if flat_leq(left, right):
        return right
    if flat_leq(right, left):
        return left
    return FLAT_TOP


def flat_meet(left: FlatValue, right: FlatValue) -> FlatValue:
    if flat_leq(left, right):
        return left
    if flat_leq(right, left):
        return right
    return FLAT_BOT


def flat_aop(
    op: Callable[[int, int], int], left: FlatValue, right: FlatValue
) -> FlatValue:
    """Extend integer arithmetic to the flat lattice.

    Per the paper, ``⊥ aop x = ⊥`` (strict in unreachability) and otherwise
    ``⊤ aop x = ⊤``.
    """
    if left is FLAT_BOT or right is FLAT_BOT:
        return FLAT_BOT
    if left is FLAT_TOP or right is FLAT_TOP:
        return FLAT_TOP
    assert isinstance(left, int) and isinstance(right, int)
    return op(left, right)


def flat_str(value: FlatValue) -> str:
    return str(value)


@dataclass(frozen=True, slots=True)
class Qualifier:
    """A full ``[B{I}]{T}`` triple.

    The *safe* predicate of paper §3.3 — data may cross function boundaries
    or be stored to the heap only when its offset is statically zero.
    """

    boxedness: Boxedness = TOP_B
    offset: FlatValue = 0
    tag: FlatValue = FLAT_TOP

    def leq(self, other: "Qualifier") -> bool:
        if self is other:
            return True
        # inlined Boxedness.leq / flat_leq: this is the innermost
        # comparison of the dataflow fixpoint
        sb = self.boxedness
        ob = other.boxedness
        if sb is not ob and sb is not BOT_B and ob is not TOP_B:
            return False
        so = self.offset
        oo = other.offset
        if so is not FLAT_BOT and oo is not FLAT_TOP and so != oo:
            return False
        st = self.tag
        ot = other.tag
        return st is FLAT_BOT or ot is FLAT_TOP or st == ot

    def join(self, other: "Qualifier") -> "Qualifier":
        if self is other:
            return self
        # returning a dominating side (not a fresh triple) preserves
        # object identity across fixpoint iterations, which keeps the
        # `is`-based fast paths in leq/join/with_qual hitting
        if self.leq(other):
            return other
        if other.leq(self):
            return self
        return Qualifier(
            self.boxedness.join(other.boxedness),
            flat_join(self.offset, other.offset),
            flat_join(self.tag, other.tag),
        )

    def meet(self, other: "Qualifier") -> "Qualifier":
        return Qualifier(
            self.boxedness.meet(other.boxedness),
            flat_meet(self.offset, other.offset),
            flat_meet(self.tag, other.tag),
        )

    @property
    def is_safe(self) -> bool:
        """Safe values have offset exactly 0 (or are unreachable)."""
        return self.offset == 0 or self.offset is FLAT_BOT

    @property
    def is_bottom(self) -> bool:
        return self is BOTTOM_QUALIFIER or (
            self.boxedness is BOT_B
            and self.offset is FLAT_BOT
            and self.tag is FLAT_BOT
        )

    def __str__(self) -> str:
        return f"[{self.boxedness}{{{flat_str(self.offset)}}}]{{{flat_str(self.tag)}}}"


#: Qualifier for freshly-seen data of unknown shape: ``[⊤{0}]{⊤}``.
UNKNOWN_QUALIFIER = Qualifier(TOP_B, 0, FLAT_TOP)

#: Qualifier of unreachable code: ``[⊥{⊥}]{⊥}``.
BOTTOM_QUALIFIER = Qualifier(BOT_B, FLAT_BOT, FLAT_BOT)


def qualifier_for_int(value: int) -> Qualifier:
    """Qualifier of a C integer literal ``n``: ``[⊤{0}]{n}``."""
    return Qualifier(TOP_B, 0, value)
