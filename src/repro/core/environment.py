"""Type environments for the flow-sensitive analysis (paper §3.3).

A :class:`TypeEnv` maps local variables to entries ``ct[B{I}]{T}``; the
``ct`` part is flow-insensitive (shared, unified in place) while the
qualifier triple varies per program point.  A :class:`LabelEnv` is the
paper's ``G``: one environment per label, joined monotonically until
fixpoint.  The protection set ``P`` is a plain frozenset of names — per the
paper it is constant over a function body (``CAMLprotect`` only occurs at
the top level).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional

from .lattice import BOTTOM_QUALIFIER, Qualifier, UNKNOWN_QUALIFIER
from .types import CType

#: Callback unifying the flow-insensitive ct components at join points.
CTUnify = Optional[Callable[[CType, CType], None]]


@dataclass(frozen=True, slots=True)
class Entry:
    """One binding: flow-insensitive ``ct`` plus flow-sensitive qualifier."""

    ct: CType
    qual: Qualifier = UNKNOWN_QUALIFIER

    def with_qual(self, qual: Qualifier) -> "Entry":
        if qual is self.qual:  # qualifiers are interned
            return self
        return Entry(self.ct, qual)

    def reset(self) -> "Entry":
        """All-⊥ qualifier, used after unconditional branches (paper §3.3.2)."""
        if self.qual is BOTTOM_QUALIFIER:
            return self
        return Entry(self.ct, BOTTOM_QUALIFIER)

    def __str__(self) -> str:
        return f"{self.ct}{self.qual}"


@dataclass
class TypeEnv:
    """``Γ`` — immutable-by-convention mapping from names to entries.

    Update methods return new environments; the shared ``ct`` components
    are the same objects, so unification applies across all program points
    (exactly the paper's split between unification and dataflow).
    """

    bindings: Dict[str, Entry] = field(default_factory=dict)

    def __contains__(self, name: str) -> bool:
        return name in self.bindings

    def __getitem__(self, name: str) -> Entry:
        return self.bindings[name]

    def get(self, name: str) -> Optional[Entry]:
        return self.bindings.get(name)

    def set(self, name: str, entry: Entry) -> "TypeEnv":
        new = dict(self.bindings)
        new[name] = entry
        return TypeEnv(new)

    def set_qual(self, name: str, qual: Qualifier) -> "TypeEnv":
        return self.set(name, self.bindings[name].with_qual(qual))

    def names(self) -> Iterator[str]:
        return iter(self.bindings)

    def reset(self) -> "TypeEnv":
        """``reset(Γ)`` — every qualifier to ⊥ (unreachable)."""
        for entry in self.bindings.values():
            if entry.qual is not BOTTOM_QUALIFIER:
                break
        else:  # already all-⊥: fixpoint iterations hit this constantly
            return self
        return TypeEnv({n: e.reset() for n, e in self.bindings.items()})

    def join(self, other: "TypeEnv", unify: CTUnify = None) -> "TypeEnv":
        """``Γ ⊔ Γ'`` — join qualifiers pointwise, unify the ``ct`` parts.

        Assignments replace a local's ``ct`` (paper (VSet Stmt)); at control
        flow joins the two versions must denote the same type again, which
        is what the ``unify`` callback enforces.
        """
        joined: Dict[str, Entry] = {}
        other_bindings = other.bindings
        for name, left in self.bindings.items():
            right = other_bindings.get(name)
            if right is None:
                joined[name] = left
            else:
                if unify is not None and left.ct is not right.ct:
                    unify(left.ct, right.ct)
                left_qual = left.qual
                right_qual = right.qual
                if left_qual is right_qual:
                    joined[name] = left
                else:
                    joined[name] = left.with_qual(left_qual.join(right_qual))
        for name, right in other_bindings.items():
            if name not in joined:
                joined[name] = right
        return TypeEnv(joined)

    def leq(self, other: "TypeEnv") -> bool:
        """``Γ ⊑ Γ'`` pointwise (missing bindings are ⊥ on the left)."""
        if self.bindings is other.bindings:
            return True
        other_bindings = other.bindings
        for name, entry in self.bindings.items():
            other_entry = other_bindings.get(name)
            if other_entry is None:
                if not entry.qual.is_bottom:
                    return False
            elif entry.qual is not other_entry.qual and not entry.qual.leq(
                other_entry.qual
            ):
                return False
        return True

    def copy(self) -> "TypeEnv":
        return TypeEnv(dict(self.bindings))

    def __str__(self) -> str:
        inner = ", ".join(f"{n}: {e}" for n, e in sorted(self.bindings.items()))
        return "{" + inner + "}"


@dataclass
class LabelEnv:
    """``G`` — the per-label environments, with monotone joins.

    :meth:`join_into` returns True when the stored environment actually
    grew, which is the fixpoint driver's signal to re-queue the label.
    """

    envs: Dict[str, TypeEnv] = field(default_factory=dict)

    def get(self, label: str) -> TypeEnv:
        return self.envs[label]

    def initialize(self, label: str, env: TypeEnv) -> None:
        self.envs[label] = env

    def join_into(self, label: str, env: TypeEnv, unify: CTUnify = None) -> bool:
        current = self.envs.get(label)
        if current is None:
            self.envs[label] = env.copy()
            return True
        # one fused pass over the incoming bindings does what used to take
        # three (unify loop, leq check, join): unify shared ct components
        # and detect growth at the same time
        current_bindings = current.bindings
        grew = False
        for name, entry in env.bindings.items():
            other = current_bindings.get(name)
            if other is None:
                if not entry.qual.is_bottom:
                    grew = True
            else:
                if unify is not None and other.ct is not entry.ct:
                    unify(other.ct, entry.ct)
                entry_qual = entry.qual
                other_qual = other.qual
                if entry_qual is not other_qual and not grew and not entry_qual.leq(
                    other_qual
                ):
                    grew = True
        if not grew:
            return False
        # ct components were unified just above, so the join itself is
        # pure qualifier work
        self.envs[label] = current.join(env)
        return True
