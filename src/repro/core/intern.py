"""Hash-consing for the immutable type languages.

Structurally equal type terms are identical objects: every constructor
call on an interned class first builds the candidate instance, then
returns the canonical copy from a per-class cache.  Identity then becomes
a sound (and very fast) equality pre-check, which the unifier and the
flow-sensitive join exploit on the cold path — ``a is b`` short-circuits
structural descent entirely.

Interning is keyed on the frozen dataclass's own structural hash, so
inference *variables* (declared ``eq=False``, hashed by identity) embed in
interned terms without ever being conflated: two ``CValue(α)`` terms are
merged only when they carry the *same* ``α``.

Caches are per-process and bounded; :func:`clear_intern_caches` resets
them (tests, long-lived daemons).  Sharing canonical terms across
analysis runs is safe because terms are immutable and all inference
state — variable bindings, effect constraints — lives in each run's own
:class:`~repro.core.unify.Unifier`, never in the terms themselves.
"""

from __future__ import annotations

from typing import Any

#: Cap per interned class; a full cache is cleared wholesale (the memo is
#: an optimization, not a registry, so dropping it only costs future hits).
INTERN_CACHE_LIMIT = 65536

_INTERNED_CLASSES: list[type] = []


class InternedMeta(type):
    """Metaclass giving a frozen dataclass hash-consed construction."""

    def __new__(mcls, name: str, bases: tuple, namespace: dict) -> type:
        cls = super().__new__(mcls, name, bases, namespace)
        cls._intern_cache = {}
        _INTERNED_CLASSES.append(cls)
        return cls

    def __call__(cls, *args: Any, **kwargs: Any) -> Any:
        inst = super().__call__(*args, **kwargs)
        cache = cls._intern_cache
        cached = cache.get(inst)
        if cached is not None:
            return cached
        if len(cache) >= INTERN_CACHE_LIMIT:
            cache.clear()
        cache[inst] = inst
        return inst


def clear_intern_caches() -> None:
    """Drop every canonical-term cache (safe at any point)."""
    for cls in _INTERNED_CLASSES:
        cls._intern_cache.clear()


def intern_stats() -> dict[str, int]:
    """Cache sizes by class name, for instrumentation and tests."""
    return {
        cls.__name__: len(cls._intern_cache) for cls in _INTERNED_CLASSES
    }
