"""Runtime-check synthesis for imprecision warnings (paper §5.2, end).

    "One interesting direction for future work would be eliminating these
     warnings and instead adding run-time checks to the C code for these
     cases."

This module implements that direction: for every *imprecision* diagnostic
the analysis produced — statically unknown offsets, globals of type
``value``, calls through function pointers, address-taken values — it
proposes a concrete C guard to insert at the flagged location.  The guards
use only standard ``caml/mlvalues.h`` macros, so the output can be pasted
into real glue code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..diagnostics import Category, Diagnostic, Kind
from ..source import Span
from .checker import AnalysisReport


@dataclass(frozen=True)
class RuntimeCheck:
    """One proposed insertion."""

    span: Span
    diagnostic: Diagnostic
    guard: str
    rationale: str

    def render(self) -> str:
        return (
            f"{self.span}: insert\n"
            f"    {self.guard}\n"
            f"  // {self.rationale}"
        )


_GUARDS: dict[Kind, tuple[str, str]] = {
    Kind.UNKNOWN_OFFSET: (
        "if (!(Is_block({v}) && {i} >= 0 && (mlsize_t){i} < Wosize_val({v}))) "
        "caml_invalid_argument(\"{where}: block index out of range\");",
        "the analysis could not bound the block offset statically; "
        "check it against the block header at run time",
    ),
    Kind.GLOBAL_VALUE: (
        "caml_register_global_root(&{v});  /* at module init */",
        "a global value is invisible to the GC unless registered as a root",
    ),
    Kind.ADDRESS_TAKEN: (
        "caml_register_global_root(&{v}); "
        "/* ... */ caml_remove_global_root(&{v});",
        "once its address escapes, the variable must be pinned as a root "
        "for the duration of the escape",
    ),
    Kind.FUNCTION_POINTER: (
        "if ({v} == NULL) caml_invalid_argument(\"{where}: null callback\");",
        "the analysis generates no constraints through a function pointer; "
        "at minimum guard against null before the indirect call",
    ),
}


@dataclass
class InstrumentationPlan:
    """Every runtime check derived from one analysis report."""

    checks: List[RuntimeCheck] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.checks)

    def by_kind(self, kind: Kind) -> List[RuntimeCheck]:
        return [c for c in self.checks if c.diagnostic.kind is kind]

    def render(self) -> str:
        if not self.checks:
            return "no imprecision warnings; nothing to instrument"
        lines = [f"{self.count} runtime check(s) proposed:"]
        lines.extend(check.render() for check in self.checks)
        return "\n".join(lines)


def _variable_hint(diagnostic: Diagnostic) -> str:
    """Best-effort variable name extracted from the message backticks."""
    message = diagnostic.message
    if "`" in message:
        start = message.index("`") + 1
        end = message.index("`", start)
        return message[start:end]
    return "v"


def plan_instrumentation(report: AnalysisReport) -> InstrumentationPlan:
    """Propose a runtime check for every imprecision diagnostic."""
    plan = InstrumentationPlan()
    for diagnostic in report.diagnostics.by_category(Category.IMPRECISION):
        template = _GUARDS.get(diagnostic.kind)
        if template is None:
            continue
        guard_fmt, rationale = template
        where = diagnostic.function or diagnostic.span.filename
        guard = guard_fmt.format(
            v=_variable_hint(diagnostic), i="idx", where=where
        )
        plan.checks.append(
            RuntimeCheck(
                span=diagnostic.span,
                diagnostic=diagnostic,
                guard=guard,
                rationale=rationale,
            )
        )
    return plan
