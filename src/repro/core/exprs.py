"""Type inference for C expressions — paper Figure 6.

Judgments have the form ``Γ, P ⊢ e : ct[B{I}]{T}``.  The ``ct`` component
is solved by unification (shared across program points); the ``[B{I}]{T}``
qualifier is computed flow-sensitively by the caller (:mod:`stmts`).

Rule violations raise :class:`RuleError`, which the statement layer turns
into diagnostics and recovers from, so one bad expression does not sink the
whole function.  Some rules do not fail but *degrade*: they report
imprecision (unknown offsets, address-taken values, function pointers) and
continue with ``⊤`` information, mirroring the paper's implementation
(§5.1, §5.2 "Imprecision" column).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..cfront.ir import (
    AOp,
    AddrOf,
    CastExp,
    Deref,
    Expr,
    IntLit,
    IntValExp,
    PtrAdd,
    StrLit,
    ValIntExp,
    VarExp,
)
from ..diagnostics import DiagnosticBag, Kind
from ..source import DUMMY_SPAN, Span
from .constraints import EffectConstraintStore, PsiConstraintStore
from .environment import Entry, TypeEnv
from .lattice import (
    BOTTOM_QUALIFIER,
    BOXED,
    FLAT_TOP,
    Qualifier,
    TOP_B,
    UNBOXED,
    UNKNOWN_QUALIFIER,
    flat_aop,
    is_const,
    qualifier_for_int,
)
from .srctypes import CSrcPtr, CSrcType, CSrcValue, CSrcVoid
from .translate import eta
from .types import (
    C_INT,
    CFun,
    CPtr,
    CType,
    CValue,
    CInt,
    GCEffect,
    MLType,
    MTCustom,
    MTRepr,
    MTVar,
    Pi,
    PiVar,
    PsiConst,
    Sigma,
    SigmaVar,
    fresh_mt,
    fresh_pi_row,
    fresh_psi,
    fresh_sigma_row,
)
from .unify import UnificationError, Unifier


class RuleError(Exception):
    """A Figure 6/7 rule failed; carries the diagnostic kind and message."""

    def __init__(self, kind: Kind, message: str, span: Span = DUMMY_SPAN):
        self.kind = kind
        self.message = message
        self.span = span
        super().__init__(message)


@dataclass
class Options:
    """Analysis switches; the defaults are the paper's configuration.

    The ablation benchmarks flip these off to measure how much each piece
    of the design contributes (DESIGN.md experiment index).
    """

    flow_sensitive: bool = True
    gc_effects: bool = True
    check_casts: bool = True


@dataclass(frozen=True)
class AllocTag:
    """Structured result-tag spec for an allocator.

    Exactly one field is set: ``literal`` pins the fresh block's tag to a
    constant; ``from_arg`` reads it from the call's argument at that index
    (``caml_alloc(n, t)`` takes the tag as its second argument).  The
    dialect tables carry the legacy ``int | "argN"`` spelling at the
    boundary protocol; :func:`normalize_alloc_tags` converts it once at
    checker construction so the per-call-site path stays structural.
    """

    literal: Optional[int] = None
    from_arg: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.literal is None) == (self.from_arg is None):
            raise ValueError("AllocTag needs exactly one of literal/from_arg")


def normalize_alloc_tags(raw: dict[str, int | str]) -> dict[str, AllocTag]:
    """Convert a dialect's allocator table to the structured form.

    Accepts the boundary-protocol spelling — a literal tag or an
    ``"argN"`` string naming the argument index that carries the tag.
    """
    normalized: dict[str, AllocTag] = {}
    for name, spec in raw.items():
        if isinstance(spec, AllocTag):
            normalized[name] = spec
        elif isinstance(spec, int):
            normalized[name] = AllocTag(literal=spec)
        elif isinstance(spec, str) and spec.startswith("arg"):
            normalized[name] = AllocTag(from_arg=int(spec[3:]))
        else:
            raise ValueError(f"bad alloc-tag spec for `{name}`: {spec!r}")
    return normalized


@dataclass
class PendingGCCheck:
    """A conditional protection obligation from one call site (App rule).

    Discharged after effect solving: if the callee may GC, every candidate
    whose final type is a heap pointer must have been in ``P``.
    """

    span: Span
    function: str
    callee: str
    effect: GCEffect
    candidates: list[tuple[str, CType]]


@dataclass
class Context:
    """Everything the expression/statement rules share for one program."""

    unifier: Unifier
    psi_constraints: PsiConstraintStore
    effect_constraints: EffectConstraintStore
    diagnostics: DiagnosticBag
    functions: dict[str, Entry] = field(default_factory=dict)
    #: functions whose type is instantiated afresh at every call site
    polymorphic: set[str] = field(default_factory=set)
    #: extra bindings visible in every function (scalar globals)
    global_bindings: dict[str, Entry] = field(default_factory=dict)
    options: Options = field(default_factory=Options)
    pending_gc_checks: list[PendingGCCheck] = field(default_factory=list)
    #: names of variables pinned to ⊤ because their address was taken (§5.1)
    address_taken: set[str] = field(default_factory=set)
    #: dialect override of the allocator→result-tag table, normalized to
    #: :class:`AllocTag` (None = OCaml's
    #: :data:`repro.cfront.macros.ALLOC_RESULT_TAG`)
    alloc_result_tags: Optional[dict[str, AllocTag]] = None
    _reported: set[tuple[Kind, str, int, str]] = field(default_factory=set)

    def report(
        self, kind: Kind, span: Span, message: str, function: Optional[str] = None
    ) -> None:
        """Emit a diagnostic once (fixpoint iteration revisits statements)."""
        key = (kind, span.filename, span.start.offset, message)
        if key in self._reported:
            return
        self._reported.add(key)
        self.diagnostics.emit(kind, span, message, function=function)


_INT_OPS: dict[str, Callable[[int, int], int]] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": lambda a, b: a // b if b else 0,
    "%": lambda a, b: a % b if b else 0,
    "&": operator.and_,
    "|": operator.or_,
    "^": operator.xor,
    "<<": operator.lshift,
    ">>": operator.rshift,
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "<": lambda a, b: int(a < b),
    ">": lambda a, b: int(a > b),
    "<=": lambda a, b: int(a <= b),
    ">=": lambda a, b: int(a >= b),
    "&&": lambda a, b: int(bool(a) and bool(b)),
    "||": lambda a, b: int(bool(a) or bool(b)),
}


class ExprTyper:
    """Implements the Figure 6 expression judgments against a context."""

    def __init__(self, ctx: Context, function: str):
        self.ctx = ctx
        self.function = function

    # -- helpers on representational structure ------------------------------

    def as_repr(self, mt: MLType, span: Span) -> MTRepr:
        """Force ``mt`` to be a representational type ``(Ψ, Σ)``."""
        resolved = self.ctx.unifier.resolve_mt(mt)
        if isinstance(resolved, MTRepr):
            return resolved
        if isinstance(resolved, MTVar):
            fresh = MTRepr(psi=fresh_psi(), sigma=fresh_sigma_row())
            self.ctx.unifier.unify_mt(resolved, fresh)
            return fresh
        raise RuleError(
            Kind.TYPE_MISMATCH,
            f"OCaml value of type `{resolved}` used as structured data",
            span,
        )

    def sigma_product_at(self, repr_type: MTRepr, tag: int, span: Span) -> Pi:
        """Ensure ``Σ`` has a product at index ``tag`` and return it.

        Grows open rows (this is how sum types grow during inference); on
        closed rows that are too short, raises a tag-range error.
        """
        unifier = self.ctx.unifier
        sigma = unifier.resolve_sigma(repr_type.sigma)
        if len(sigma.prods) <= tag:
            needed = Sigma(
                prods=tuple(fresh_pi_row() for _ in range(tag + 1)),
                tail=SigmaVar(),
            )
            try:
                unifier.unify_sigma(sigma, needed)
            except UnificationError as exc:
                raise RuleError(
                    Kind.TAG_OUT_OF_RANGE,
                    f"block tag {tag} out of range: {exc.reason}",
                    span,
                ) from exc
            sigma = unifier.resolve_sigma(sigma)
        return sigma.prods[tag]

    def pi_elem_at(self, pi: Pi, index: int, span: Span) -> MLType:
        """Ensure a product has an element at ``index`` and return its type."""
        unifier = self.ctx.unifier
        resolved = unifier.resolve_pi(pi)
        if len(resolved.elems) <= index:
            needed = Pi(
                elems=tuple(fresh_mt() for _ in range(index + 1)),
                tail=PiVar(),
            )
            try:
                unifier.unify_pi(resolved, needed)
            except UnificationError as exc:
                raise RuleError(
                    Kind.BAD_FIELD_ACCESS,
                    f"field {index} out of range: {exc.reason}",
                    span,
                ) from exc
            resolved = unifier.resolve_pi(resolved)
        return resolved.elems[index]

    # -- the judgment --------------------------------------------------------

    def type_expr(self, env: TypeEnv, exp: Expr) -> tuple[CType, Qualifier]:
        """``Γ, P ⊢ e : ct[B{I}]{T}``."""
        # type-keyed dispatch instead of an isinstance ladder: this is the
        # single hottest entry point of the inference
        kind = type(exp)
        if kind is VarExp:
            return self._type_var(env, exp)
        if kind is IntLit:
            # (Int Exp)
            return C_INT, qualifier_for_int(exp.value)
        if kind is Deref:
            return self._type_deref(env, exp)
        if kind is AOp:
            return self._type_aop(env, exp)
        if kind is PtrAdd:
            return self._type_ptr_add(env, exp)
        if kind is CastExp:
            return self._type_cast(env, exp)
        if kind is ValIntExp:
            return self._type_val_int(env, exp)
        if kind is IntValExp:
            return self._type_int_val(env, exp)
        if kind is AddrOf:
            return self._type_addr_of(env, exp)
        if kind is StrLit:
            return CPtr(C_INT), UNKNOWN_QUALIFIER
        # every IR expression node carries a span (cfront.ir dataclasses)
        raise RuleError(Kind.TYPE_MISMATCH, f"unsupported expression `{exp}`", exp.span)

    # (Var Exp)
    def _type_var(self, env: TypeEnv, exp: VarExp) -> tuple[CType, Qualifier]:
        entry = env.get(exp.name)
        if entry is None:
            fn_entry = self.ctx.functions.get(exp.name)
            if fn_entry is not None:
                return fn_entry.ct, UNKNOWN_QUALIFIER
            raise RuleError(
                Kind.TYPE_MISMATCH, f"unknown identifier `{exp.name}`", exp.span
            )
        if exp.name in self.ctx.address_taken:
            # §5.1: address-taken locals are conservatively ⊤ everywhere.
            return entry.ct, UNKNOWN_QUALIFIER
        return entry.ct, entry.qual

    def _type_deref(self, env: TypeEnv, exp: Deref) -> tuple[CType, Qualifier]:
        base_ct, base_qual = self.type_expr(env, exp.exp)
        base_ct = self._shallow(base_ct)
        if isinstance(base_ct, CPtr):
            # (C Deref Exp)
            return base_ct.target, UNKNOWN_QUALIFIER
        if isinstance(base_ct, CValue):
            return self._deref_value(base_ct, base_qual, exp.span)
        raise RuleError(
            Kind.TYPE_MISMATCH,
            f"dereference of non-pointer type `{base_ct}`",
            exp.span,
        )

    def _deref_value(
        self, ct: CValue, qual: Qualifier, span: Span
    ) -> tuple[CType, Qualifier]:
        if qual.is_bottom:
            # unreachable code imposes no constraints
            return CValue(fresh_mt()), BOTTOM_QUALIFIER
        repr_type = self.as_repr(ct.mt, span)
        offset = qual.offset
        if not is_const(offset):
            self.ctx.report(
                Kind.UNKNOWN_OFFSET,
                span,
                "read from a structured block at a statically unknown offset",
                self.function,
            )
            return CValue(fresh_mt()), UNKNOWN_QUALIFIER
        if qual.boxedness is BOXED and is_const(qual.tag):
            # (Val Deref Exp): tag m and offset n both known.
            prod = self.sigma_product_at(repr_type, qual.tag, span)
            elem = self.pi_elem_at(prod, offset, span)
            return CValue(elem), UNKNOWN_QUALIFIER
        if qual.boxedness is UNBOXED:
            raise RuleError(
                Kind.BAD_FIELD_ACCESS,
                "Field access on a value known to be unboxed",
                span,
            )
        if qual.boxedness is BOXED:
            # Known boxed but untested tag: fine when only one constructor
            # is boxed (the option/list idiom after Is_long/Is_block).
            prod = self._single_product(repr_type, span, "Field access")
            elem = self.pi_elem_at(prod, offset, span)
            return CValue(elem), UNKNOWN_QUALIFIER
        # (Val Deref Tuple Exp): boxedness not established; only sound for
        # types with exactly one non-nullary constructor and no tag needed.
        self._require_pure_tuple(repr_type, span, "Field access")
        prod = self.sigma_product_at(repr_type, 0, span)
        elem = self.pi_elem_at(prod, offset, span)
        return CValue(elem), UNKNOWN_QUALIFIER

    def _single_product(self, repr_type: MTRepr, span: Span, what: str) -> Pi:
        """Access at an untested tag: only the sole product can be meant."""
        sigma = self.ctx.unifier.resolve_sigma(repr_type.sigma)
        if sigma.is_closed and len(sigma.prods) > 1:
            raise RuleError(
                Kind.BAD_FIELD_ACCESS,
                f"{what} without a tag test on a sum with "
                f"{len(sigma.prods)} non-nullary constructors",
                span,
            )
        return self.sigma_product_at(repr_type, 0, span)

    def _require_pure_tuple(self, repr_type: MTRepr, span: Span, what: str) -> None:
        """The tuple rules need Ψ = 0 and a single product (no tag choice)."""
        unifier = self.ctx.unifier
        psi = unifier.resolve_psi(repr_type.psi)
        sigma = unifier.resolve_sigma(repr_type.sigma)
        if (
            isinstance(psi, PsiConst)
            and psi.count == 1
            and sigma.is_closed
            and len(sigma.prods) == 1
        ):
            # exactly the shape of `t option` — the paper found glue code
            # dereferencing an option as if it were its payload (§5.2)
            raise RuleError(
                Kind.OPTION_MISUSE,
                f"{what} treats an option value as its payload without "
                "testing for None",
                span,
            )
        try:
            unifier.unify_psi(repr_type.psi, PsiConst(0))
        except UnificationError as exc:
            raise RuleError(
                Kind.BAD_FIELD_ACCESS,
                f"{what} without a boxedness test on a value that may be "
                f"unboxed ({exc.reason})",
                span,
            ) from exc
        sigma = unifier.resolve_sigma(repr_type.sigma)
        if len(sigma.prods) > 1:
            raise RuleError(
                Kind.BAD_FIELD_ACCESS,
                f"{what} without a tag test on a sum with several "
                "non-nullary constructors",
                span,
            )

    # (AOP Exp)
    def _type_aop(self, env: TypeEnv, exp: AOp) -> tuple[CType, Qualifier]:
        left_ct, left_qual = self.type_expr(env, exp.left)
        right_ct, right_qual = self.type_expr(env, exp.right)
        for side_ct, side in ((self._shallow(left_ct), exp.left), (self._shallow(right_ct), exp.right)):
            if isinstance(side_ct, CValue):
                mt = self.ctx.unifier.resolve_mt(side_ct.mt)
                if isinstance(mt, MTCustom):
                    # §5.2: `(t*)v + 1` vs `(t*)(v + sizeof(t*))` — pointer
                    # arithmetic disguised as integer arithmetic.  Sound to
                    # reject, but the code is usually correct: the paper's
                    # main false-positive source.
                    self.ctx.report(
                        Kind.DISGUISED_PTR_ARITH,
                        exp.span,
                        f"arithmetic on custom value `{side}`; if this is "
                        "disguised pointer arithmetic the code may be correct",
                        self.function,
                    )
                    return C_INT, UNKNOWN_QUALIFIER
                raise RuleError(
                    Kind.TYPE_MISMATCH,
                    f"arithmetic on OCaml value `{side}` without Int_val",
                    exp.span,
                )
            if isinstance(side_ct, (CPtr, CFun)):
                # Pointer comparisons are fine; other arithmetic is outside
                # the formal system — degrade to ⊤ int.
                return C_INT, UNKNOWN_QUALIFIER
        op = _INT_OPS.get(exp.op)
        if op is None:
            return C_INT, UNKNOWN_QUALIFIER
        tag = flat_aop(op, left_qual.tag, right_qual.tag)
        return C_INT, Qualifier(TOP_B, 0, tag)

    def _type_ptr_add(self, env: TypeEnv, exp: PtrAdd) -> tuple[CType, Qualifier]:
        base_ct, base_qual = self.type_expr(env, exp.base)
        offset_ct, offset_qual = self.type_expr(env, exp.offset)
        base_ct = self._shallow(base_ct)
        if isinstance(base_ct, CPtr):
            # (Add C Exp)
            return base_ct, UNKNOWN_QUALIFIER
        if not isinstance(base_ct, CValue):
            raise RuleError(
                Kind.TYPE_MISMATCH,
                f"pointer arithmetic on non-pointer `{exp.base}`",
                exp.span,
            )
        base_mt = self.ctx.unifier.resolve_mt(base_ct.mt)
        if isinstance(base_mt, MTCustom):
            # `(t*)(v + sizeof(t*))` — the value is custom C data and the
            # arithmetic is really pointer arithmetic in disguise (§5.2).
            self.ctx.report(
                Kind.DISGUISED_PTR_ARITH,
                exp.span,
                f"arithmetic on custom value `{exp.base}`; likely disguised "
                "pointer arithmetic",
                self.function,
            )
            return C_INT, UNKNOWN_QUALIFIER
        if base_qual.is_bottom:
            return base_ct, BOTTOM_QUALIFIER
        repr_type = self.as_repr(base_ct.mt, exp.span)
        if not (is_const(base_qual.offset) and is_const(offset_qual.tag)):
            # Offset statically unknown: the paper's implementation emits an
            # imprecision warning and gives up on this value (§5.2).
            self.ctx.report(
                Kind.UNKNOWN_OFFSET,
                exp.span,
                "pointer arithmetic on a value with a statically unknown "
                "offset",
                self.function,
            )
            return base_ct, UNKNOWN_QUALIFIER
        new_offset = base_qual.offset + offset_qual.tag
        if new_offset < 0:
            raise RuleError(
                Kind.BAD_FIELD_ACCESS,
                f"negative block offset {new_offset}",
                exp.span,
            )
        if base_qual.boxedness is BOXED and is_const(base_qual.tag):
            # (Add Val Exp): all indices statically known; the resulting
            # pointer must itself be dereferenceable.
            prod = self.sigma_product_at(repr_type, base_qual.tag, exp.span)
            self.pi_elem_at(prod, new_offset, exp.span)
            return base_ct, Qualifier(BOXED, new_offset, base_qual.tag)
        if base_qual.boxedness is UNBOXED:
            raise RuleError(
                Kind.BAD_FIELD_ACCESS,
                "pointer arithmetic on a value known to be unboxed",
                exp.span,
            )
        if base_qual.boxedness is BOXED:
            prod = self._single_product(repr_type, exp.span, "pointer arithmetic")
            self.pi_elem_at(prod, new_offset, exp.span)
            return base_ct, Qualifier(BOXED, new_offset, 0)
        # Untested boxedness: the paper's omitted companion of (Val Deref
        # Tuple Exp) — sound only for single-constructor boxed types.
        self._require_pure_tuple(repr_type, exp.span, "pointer arithmetic")
        prod = self.sigma_product_at(repr_type, 0, exp.span)
        self.pi_elem_at(prod, new_offset, exp.span)
        return base_ct, Qualifier(TOP_B, new_offset, FLAT_TOP)

    def _type_cast(self, env: TypeEnv, exp: CastExp) -> tuple[CType, Qualifier]:
        inner_ct, inner_qual = self.type_expr(env, exp.exp)
        inner_ct = self._shallow(inner_ct)
        target_src = exp.ctype

        if isinstance(target_src, CSrcValue):
            if isinstance(inner_ct, CPtr):
                # (Custom Exp): C pointer injected into OCaml as custom data.
                return (
                    CValue(MTCustom(inner_ct)),
                    UNKNOWN_QUALIFIER,
                )
            if isinstance(inner_ct, CValue):
                return inner_ct, inner_qual  # identity cast
            if self.ctx.options.check_casts:
                self.ctx.report(
                    Kind.VALUE_CAST,
                    exp.span,
                    f"cast of non-pointer `{exp.exp}` to value without Val_int",
                    self.function,
                )
            return CValue(fresh_mt()), UNKNOWN_QUALIFIER

        target_ct = eta(target_src)
        if isinstance(inner_ct, CValue):
            # (Val Cast Exp): the only legal cast out of value is back to
            # the custom C type the value carries.
            if self._is_void_ptr(target_src):
                # §5.1 heuristic: casts through void* are ignored.
                return target_ct, UNKNOWN_QUALIFIER
            mt = self.ctx.unifier.resolve_mt(inner_ct.mt)
            try:
                self.ctx.unifier.unify_mt(mt, MTCustom(target_ct))
            except UnificationError as exc:
                raise RuleError(
                    Kind.VALUE_CAST,
                    f"cast of OCaml value to `{target_src}`: {exc.reason}",
                    exp.span,
                ) from exc
            return target_ct, UNKNOWN_QUALIFIER
        # C-to-C casts: keep the target type, drop precision.  Sign/width
        # differences are ignored per §5.1.
        return target_ct, UNKNOWN_QUALIFIER

    @staticmethod
    def _is_void_ptr(ctype: CSrcType) -> bool:
        return isinstance(ctype, CSrcPtr) and isinstance(ctype.target, CSrcVoid)

    # (Val Int Exp)
    def _type_val_int(self, env: TypeEnv, exp: ValIntExp) -> tuple[CType, Qualifier]:
        inner_ct, inner_qual = self.type_expr(env, exp.exp)
        inner_ct = self._shallow(inner_ct)
        if isinstance(inner_ct, CValue):
            raise RuleError(
                Kind.BAD_VAL_INT,
                f"Val_int applied to `{exp.exp}` which is already an OCaml "
                "value (did you mean Int_val?)",
                exp.span,
            )
        if not isinstance(inner_ct, CInt):
            raise RuleError(
                Kind.BAD_VAL_INT,
                f"Val_int applied to non-integer `{exp.exp}` of type `{inner_ct}`",
                exp.span,
            )
        psi = fresh_psi()
        result = MTRepr(psi=psi, sigma=fresh_sigma_row())
        self.ctx.psi_constraints.require(
            inner_qual.tag,
            psi,
            exp.span,
            f"Val_int({exp.exp})",
            self.function,
        )
        return CValue(result), Qualifier(UNBOXED, 0, inner_qual.tag)

    # (Int Val Exp)
    def _type_int_val(self, env: TypeEnv, exp: IntValExp) -> tuple[CType, Qualifier]:
        inner_ct, inner_qual = self.type_expr(env, exp.exp)
        inner_ct = self._shallow(inner_ct)
        if not isinstance(inner_ct, CValue):
            raise RuleError(
                Kind.BAD_INT_VAL,
                f"Int_val applied to `{exp.exp}` of C type `{inner_ct}` "
                "(did you mean Val_int?)",
                exp.span,
            )
        if inner_qual.boxedness is BOXED:
            raise RuleError(
                Kind.BAD_INT_VAL,
                f"Int_val applied to `{exp.exp}` which is boxed here",
                exp.span,
            )
        repr_type = self.as_repr(inner_ct.mt, exp.span)
        if inner_qual.boxedness is not UNBOXED:
            # Untested value: sound only if the type has unboxed inhabitants.
            psi = self.ctx.unifier.resolve_psi(repr_type.psi)
            if isinstance(psi, PsiConst) and psi.count == 0:
                raise RuleError(
                    Kind.BAD_INT_VAL,
                    f"Int_val applied to `{exp.exp}` whose type has no "
                    "unboxed values (it is always a pointer)",
                    exp.span,
                )
        return C_INT, Qualifier(TOP_B, 0, inner_qual.tag)

    def _type_addr_of(self, env: TypeEnv, exp: AddrOf) -> tuple[CType, Qualifier]:
        entry = env.get(exp.name)
        if entry is None:
            raise RuleError(
                Kind.TYPE_MISMATCH, f"address of unknown variable `{exp.name}`", exp.span
            )
        ct = self._shallow(entry.ct)
        if isinstance(ct, CValue):
            self.ctx.report(
                Kind.ADDRESS_TAKEN,
                exp.span,
                f"address of value variable `{exp.name}` is taken; the "
                "analysis cannot track it",
                self.function,
            )
        self.ctx.address_taken.add(exp.name)
        return CPtr(entry.ct), UNKNOWN_QUALIFIER

    # -- small utilities -----------------------------------------------------

    def _shallow(self, ct: CType) -> CType:
        """Resolve one level so isinstance dispatch sees through mt vars."""
        if isinstance(ct, CValue):
            return CValue(self.ctx.unifier.resolve_mt(ct.mt))
        return ct
