"""Whole-program driver for the multi-lingual analysis (paper §3.3.3, §5.1).

The checker stitches the two phases together:

1. it receives ``Γ_I`` — the C types of ``external`` functions produced by
   the OCaml phase (:mod:`repro.ocamlfront.repository`) — and seeds the
   function environment with it plus the OCaml runtime entry points;
2. it runs the Figure 6/7 inference over every C function body to
   fixpoint;
3. it discharges the deferred constraints: ``T + 1 ≤ Ψ`` bounds, GC-effect
   reachability and the protection obligations, and the
   polymorphic-parameter audit (the ``gz`` seek idiom, §5.2).

The result is an :class:`AnalysisReport` whose diagnostics carry Figure 9
categories, ready for the benchmark harness to tabulate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..cfront.ir import ProgramIR
from ..cfront.macros import POLYMORPHIC_BUILTINS, builtin_entries
from ..diagnostics import DiagnosticBag, Kind
from ..source import DUMMY_SPAN, Span
from ..telemetry import span as _tspan
from .constraints import EffectConstraintStore, PsiConstraintStore
from .environment import Entry
from .exprs import Context, Options, normalize_alloc_tags
from .gceffects import GCCheckSummary, discharge_gc_checks
from .srctypes import CSrcPtr, CSrcType, is_value_src
from .stmts import FunctionAnalyzer, FunctionResult
from .translate import eta
from .types import CFun, MTVar
from .unify import Unifier


@dataclass(frozen=True)
class PolyParam:
    """An external whose OCaml type had a bare ``'a`` parameter."""

    c_name: str
    param_index: int
    var: MTVar
    span: Span = DUMMY_SPAN


@dataclass
class InitialEnv:
    """``Γ_I`` — everything the OCaml phase hands to the C phase."""

    functions: dict[str, CFun] = field(default_factory=dict)
    poly_params: list[PolyParam] = field(default_factory=list)
    spans: dict[str, Span] = field(default_factory=dict)
    #: C names of externals using polymorphic variants (flagged on sight)
    poly_variant_users: set[str] = field(default_factory=set)

    def merge(self, other: "InitialEnv") -> "InitialEnv":
        merged = InitialEnv(
            functions={**self.functions, **other.functions},
            poly_params=self.poly_params + other.poly_params,
            spans={**self.spans, **other.spans},
            poly_variant_users=self.poly_variant_users | other.poly_variant_users,
        )
        return merged


@dataclass
class AnalysisReport:
    """Outcome of a whole-program run."""

    diagnostics: DiagnosticBag
    function_results: dict[str, FunctionResult]
    gc_summary: GCCheckSummary
    unification_steps: int
    elapsed_seconds: float
    #: fully-resolved signatures of the analyzed functions, pretty-printed
    signatures: dict[str, str] = field(default_factory=dict)
    #: JSON-able per-unit interface summary attached by the boundary
    #: dialect (see :mod:`repro.linker.summary`); ``None`` until a dialect
    #: extracts one
    summary: Optional[dict] = None

    def tally(self) -> dict[str, int]:
        return self.diagnostics.tally()

    @property
    def errors(self):
        return self.diagnostics.errors

    @property
    def warnings(self):
        return self.diagnostics.warnings

    def render(self) -> str:
        lines = [diag.render() for diag in self.diagnostics]
        counts = self.tally()
        lines.append(
            f"-- {counts['errors']} error(s), {counts['warnings']} warning(s), "
            f"{counts['false_positives']} false-positive-prone report(s), "
            f"{counts['imprecision']} imprecision warning(s) "
            f"in {self.elapsed_seconds:.2f}s"
        )
        return "\n".join(lines)


class Checker:
    """Run the full analysis over a lowered program.

    ``dialect`` supplies the boundary-specific seeds — the runtime builtin
    table, the polymorphic-builtin set, well-known runtime globals, and the
    allocator tag table (any object satisfying
    :class:`repro.boundary.BoundaryDialect` works).  When omitted, the
    OCaml defaults from :mod:`repro.cfront.macros` apply, which keeps the
    historical single-dialect entry points working unchanged.
    """

    def __init__(
        self,
        program: ProgramIR,
        initial_env: Optional[InitialEnv] = None,
        options: Optional[Options] = None,
        dialect=None,
    ):
        self.program = program
        self.initial_env = initial_env or InitialEnv()
        self.dialect = dialect
        effect_constraints = EffectConstraintStore()
        self.ctx = Context(
            unifier=Unifier(on_effect_equal=effect_constraints.equate),
            psi_constraints=PsiConstraintStore(),
            effect_constraints=effect_constraints,
            diagnostics=DiagnosticBag(),
            options=options or Options(),
        )
        if dialect is not None:
            self.ctx.alloc_result_tags = normalize_alloc_tags(
                dialect.alloc_result_tags()
            )

    # -- seeding -------------------------------------------------------------

    def _seed_functions(self) -> None:
        if self.dialect is not None:
            self.ctx.functions.update(self.dialect.builtin_entries())
            self.ctx.polymorphic.update(self.dialect.polymorphic_builtins())
        else:
            self.ctx.functions.update(builtin_entries())
            self.ctx.polymorphic.update(POLYMORPHIC_BUILTINS)
        for name, fn_ct in self.initial_env.functions.items():
            self.ctx.functions[name] = Entry(fn_ct)
        for fn in self.program.functions:
            if fn.polymorphic:
                self.ctx.polymorphic.add(fn.name)
            if fn.name not in self.ctx.functions:
                params = tuple(eta(t) for _, t in fn.params)
                from .types import fresh_gc

                self.ctx.functions[fn.name] = Entry(
                    CFun(
                        params=params,
                        result=eta(fn.return_type),
                        effect=fresh_gc(fn.name),
                    )
                )

    def _seed_globals(self) -> None:
        if self.dialect is not None:
            self.ctx.global_bindings.update(self.dialect.global_entries())
        for decl in self.program.globals:
            if self._mentions_value(decl.ctype):
                self.ctx.report(
                    Kind.GLOBAL_VALUE,
                    decl.span,
                    f"global `{decl.name}` holds host values; the analysis "
                    "does not track globals (register it as a global root)",
                )
                continue
            self.ctx.global_bindings[decl.name] = Entry(eta(decl.ctype))

    @staticmethod
    def _mentions_value(ctype: CSrcType) -> bool:
        node = ctype
        while True:
            if is_value_src(node):
                return True
            if not isinstance(node, CSrcPtr):
                return False
            node = node.target

    # -- post passes ------------------------------------------------------------

    def _check_poly_params(self) -> None:
        """The gz idiom: an external declared ``'a -> ...`` whose C code
        commits the parameter to one concrete representation (§5.2)."""
        for poly in self.initial_env.poly_params:
            resolved = self.ctx.unifier.resolve_mt(poly.var)
            if isinstance(resolved, MTVar):
                continue
            self.ctx.report(
                Kind.POLYMORPHIC_ABUSE,
                poly.span,
                f"external `{poly.c_name}` declares parameter "
                f"{poly.param_index + 1} with the polymorphic type 'a but its "
                f"C code uses it at `{self.ctx.unifier.deep_resolve_mt(resolved)}`; "
                "any OCaml value can be passed here",
                function=poly.c_name,
            )

    def _flag_poly_variant_users(self) -> None:
        for c_name in sorted(self.initial_env.poly_variant_users):
            self.ctx.report(
                Kind.POLY_VARIANT,
                self.initial_env.spans.get(c_name, DUMMY_SPAN),
                f"external `{c_name}` traffics in polymorphic variants, which "
                "the analysis does not model; its uses cannot be verified",
                function=c_name,
            )

    # -- main entry ------------------------------------------------------------

    def run(self) -> AnalysisReport:
        started = time.perf_counter()
        with _tspan("seed", cat="phase"):
            self._seed_functions()
            self._seed_globals()
            self._flag_poly_variant_users()

        # the per-function fixpoints are where unification and the B/I/T
        # dataflow actually run; the span tags how many were analyzed
        definitions = [fn for fn in self.program.functions if fn.is_definition]
        results: dict[str, FunctionResult] = {}
        with _tspan("dataflow", cat="phase", functions=len(definitions)):
            for fn in definitions:
                analyzer = FunctionAnalyzer(self.ctx, fn)
                results[fn.name] = analyzer.run()

        with _tspan("unify-constraints", cat="phase"):
            self.ctx.psi_constraints.check(
                self.ctx.unifier, self.ctx.diagnostics
            )
            gc_summary = discharge_gc_checks(
                self.ctx.pending_gc_checks,
                self.ctx.effect_constraints,
                self.ctx.unifier,
                self.ctx.diagnostics,
            )
            self._check_poly_params()

        elapsed = time.perf_counter() - started
        return AnalysisReport(
            diagnostics=self.ctx.diagnostics,
            function_results=results,
            gc_summary=gc_summary,
            unification_steps=self.ctx.unifier.steps,
            elapsed_seconds=elapsed,
            signatures=self._render_signatures(results),
        )

    def _render_signatures(
        self, results: dict[str, FunctionResult]
    ) -> dict[str, str]:
        """Pretty-print the final inferred type of every analyzed function.

        Effects are rendered as solved: ``gc`` when the collector is
        reachable, ``nogc`` otherwise.
        """
        from .pretty import TypePrinter
        from .types import GC, NOGC

        printer = TypePrinter(self.ctx.unifier)
        signatures: dict[str, str] = {}
        for name in results:
            entry = self.ctx.functions.get(name)
            if entry is None or not isinstance(entry.ct, CFun):
                continue
            fn_ct = entry.ct
            solved_effect = (
                GC
                if self.ctx.effect_constraints.may_gc(fn_ct.effect)
                else NOGC
            )
            solved = CFun(fn_ct.params, fn_ct.result, solved_effect)
            signatures[name] = printer.signature(name, solved)
        return signatures


def check_program(
    program: ProgramIR,
    initial_env: Optional[InitialEnv] = None,
    options: Optional[Options] = None,
) -> AnalysisReport:
    """Convenience wrapper: analyze a lowered program."""
    return Checker(program, initial_env, options).run()
