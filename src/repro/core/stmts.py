"""Type inference for C statements — paper Figure 7 plus the (App) rule.

Judgments ``Γ, G, P ⊢ s, Γ'`` are flow-sensitive: the environment threads
from statement to statement, label environments ``G`` join monotonically,
and the whole function body is re-analyzed until ``G`` reaches a fixpoint
(paper §3.3.3).  ``P`` — the protection set — is fixed per function since
``CAMLprotect`` only occurs among the top-level declarations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cfront.ir import (
    CallExp,
    Expr,
    FunctionIR,
    IntLit,
    MemLval,
    PtrAdd,
    Rhs,
    SAssign,
    SCamlReturn,
    SGoto,
    SIf,
    SIfIntTag,
    SIfSumTag,
    SIfUnboxed,
    SNop,
    SReturn,
    Stmt,
    VarDecl,
    VarExp,
    Deref,
)
from ..diagnostics import Kind
from ..source import Span
from .environment import Entry, LabelEnv, TypeEnv
from .exprs import (
    Context,
    ExprTyper,
    PendingGCCheck,
    RuleError,
    normalize_alloc_tags,
)
from .lattice import BOXED, FLAT_TOP, Qualifier, UNBOXED, UNKNOWN_QUALIFIER, is_const
from .liveness import LivenessResult, compute_liveness
from .translate import eta
from .types import (
    C_INT,
    C_VOID,
    CFun,
    CType,
    CValue,
    GCEffect,
    MTRepr,
    NOGC,
    PsiConst,
    fresh_gc,
)
from .unify import UnificationError, instantiate_ct

#: Generous bound on full-body passes; the lattice argument of §3.3.3 keeps
#: real fixpoints far below it, this is only a defence against bugs.
MAX_PASSES = 1000


@dataclass
class FunctionResult:
    """What the analyzer learned about one function."""

    name: str
    effect: GCEffect
    env_out: TypeEnv
    passes: int


class FunctionAnalyzer:
    """Runs the Figure 7 rules over one lowered function to fixpoint."""

    def __init__(self, ctx: Context, fn: FunctionIR):
        self.ctx = ctx
        self.fn = fn
        self.typer = ExprTyper(ctx, fn.name)
        self.liveness: LivenessResult = compute_liveness(fn)
        self.protected: frozenset[str] = frozenset(fn.protected_names)
        self.effect: GCEffect = self._function_effect()
        self._labels_at: dict[int, list[str]] = {}
        for label, index in fn.labels.items():
            self._labels_at.setdefault(index, []).append(label)

    def _merge_cts(self, left: CType, right: CType) -> None:
        """Unify the ct components of two entries meeting at a join point."""
        try:
            self.ctx.unifier.unify_ct(left, right)
        except UnificationError as exc:
            self.ctx.report(
                Kind.TYPE_MISMATCH,
                self.fn.span,
                f"a local is used at two incompatible types along different "
                f"paths in `{self.fn.name}`: {exc.reason}",
                self.fn.name,
            )

    # -- setup ---------------------------------------------------------------

    def _function_effect(self) -> GCEffect:
        entry = self.ctx.functions.get(self.fn.name)
        if entry is not None and isinstance(entry.ct, CFun):
            return entry.ct.effect
        return fresh_gc(self.fn.name)

    def _declare_function(self) -> CFun:
        """(Fun Decl)/(Fun Defn): build the function's ct and unify with Γ(f)."""
        params = tuple(eta(t) for _, t in self.fn.params)
        fn_ct = CFun(params=params, result=eta(self.fn.return_type), effect=self.effect)
        existing = self.ctx.functions.get(self.fn.name)
        if existing is not None:
            declared = existing.ct
            if isinstance(declared, CFun):
                declared = self._adjust_trailing_unit(declared, fn_ct)
            try:
                self.ctx.unifier.unify_ct(declared, fn_ct)
            except UnificationError as exc:
                kind = (
                    Kind.ARITY_MISMATCH
                    if "arity" in exc.reason
                    else Kind.TYPE_MISMATCH
                )
                self.ctx.report(
                    kind,
                    self.fn.span,
                    f"definition of `{self.fn.name}` conflicts with its "
                    f"declared type: {exc.reason}",
                    self.fn.name,
                )
            if isinstance(declared, CFun) and len(declared.params) == len(
                fn_ct.params
            ):
                # keep the richer declared type (it carries the OCaml info)
                return declared
        self.ctx.functions[self.fn.name] = Entry(fn_ct)
        return fn_ct

    def _adjust_trailing_unit(self, declared: CFun, defined: CFun) -> CFun:
        """§5.2's common questionable practice: the OCaml side declares a
        trailing ``unit`` parameter that the C function omits.  Warn and
        drop the phantom parameter so checking can continue."""
        if len(declared.params) != len(defined.params) + 1:
            return declared
        last = declared.params[-1]
        if not isinstance(last, CValue):
            return declared
        mt = self.ctx.unifier.resolve_mt(last.mt)
        if not (
            isinstance(mt, MTRepr)
            and isinstance(
                self.ctx.unifier.resolve_psi(mt.psi), PsiConst
            )
            and self.ctx.unifier.resolve_psi(mt.psi).count == 1  # type: ignore[union-attr]
            and not self.ctx.unifier.resolve_sigma(mt.sigma).prods
        ):
            return declared
        self.ctx.report(
            Kind.TRAILING_UNIT,
            self.fn.span,
            f"external for `{self.fn.name}` declares a trailing unit "
            "parameter that the C definition omits; the unit value is "
            "silently left on the stack",
            self.fn.name,
        )
        return CFun(
            params=declared.params[:-1],
            result=declared.result,
            effect=declared.effect,
        )

    def _initial_env(self, fn_ct: CFun) -> TypeEnv:
        env = TypeEnv(dict(self.ctx.global_bindings))
        for (name, _src), param_ct in zip(self.fn.params, fn_ct.params):
            env = env.set(name, Entry(param_ct, UNKNOWN_QUALIFIER))
        for decl in self.fn.decls:
            if isinstance(decl, VarDecl):
                env = self._declare_local(env, decl)
        return env

    def _declare_local(self, env: TypeEnv, decl: VarDecl) -> TypeEnv:
        ct = eta(decl.ctype)
        qual = UNKNOWN_QUALIFIER
        if decl.init is not None:
            try:
                init_ct, init_qual = self._type_rhs(env, decl.init, decl.span)
                self.ctx.unifier.unify_ct(ct, init_ct)
                qual = init_qual
            except RuleError as err:
                self.ctx.report(err.kind, err.span, err.message, self.fn.name)
            except UnificationError as exc:
                self.ctx.report(
                    Kind.TYPE_MISMATCH,
                    decl.span,
                    f"initializer of `{decl.name}`: {exc.reason}",
                    self.fn.name,
                )
        return env.set(decl.name, Entry(ct, qual))

    # -- fixpoint driver -------------------------------------------------------

    def run(self) -> FunctionResult:
        fn_ct = self._declare_function()
        env0 = self._initial_env(fn_ct)
        label_env = LabelEnv()
        if self.fn.labels:
            # one shared all-bottom env seeds every label: joins replace
            # (never mutate) stored environments, so sharing is safe
            bottom0 = env0.reset()
            for label in self.fn.labels:
                label_env.initialize(label, bottom0)

        self.return_ct: CType = fn_ct.result
        self._join_errors: list[str] = []
        passes = 0
        changed = True
        env_out = env0
        while changed:
            passes += 1
            if passes > MAX_PASSES:
                raise RuntimeError(
                    f"fixpoint did not converge in {MAX_PASSES} passes "
                    f"for `{self.fn.name}`"
                )
            changed, env_out = self._one_pass(env0, label_env)
        # the last pass saw no growth, so its fall-off-the-end environment
        # IS the converged one — no separate final walk needed
        return FunctionResult(
            name=self.fn.name, effect=self.effect, env_out=env_out, passes=passes
        )

    def _one_pass(
        self, env0: TypeEnv, label_env: LabelEnv
    ) -> tuple[bool, TypeEnv]:
        """Walk the whole body once.

        Returns whether any G entry grew, plus the fall-off-the-end
        environment (meaningful once nothing grew).
        """
        env = env0.copy()
        changed = False
        labels_at = self._labels_at
        for index, stmt in enumerate(self.fn.body):
            labels = labels_at.get(index)
            if labels:
                for label in labels:
                    # (Lbl Stmt): Γ ⊑ G(L), continue from G(L).
                    changed |= label_env.join_into(label, env, self._merge_cts)
                    env = label_env.get(label).copy()
            env, grew = self._step(env, label_env, index, stmt)
            changed |= grew
        return changed, env

    # -- statement dispatch ------------------------------------------------------

    def _step(
        self, env: TypeEnv, label_env: LabelEnv, index: int, stmt: Stmt
    ) -> tuple[TypeEnv, bool]:
        try:
            return self._step_inner(env, label_env, index, stmt)
        except RuleError as err:
            self.ctx.report(err.kind, err.span or stmt.span, err.message, self.fn.name)
            return env, False
        except UnificationError as exc:
            self.ctx.report(Kind.TYPE_MISMATCH, stmt.span, exc.reason, self.fn.name)
            return env, False

    def _step_inner(
        self, env: TypeEnv, label_env: LabelEnv, index: int, stmt: Stmt
    ) -> tuple[TypeEnv, bool]:
        # type-keyed dispatch instead of an isinstance ladder: this runs
        # once per statement per fixpoint pass
        kind = type(stmt)
        if kind is SNop:
            return env, False
        if kind is SAssign:
            return self._do_assign(env, index, stmt), False
        if kind is SReturn:
            return self._do_return(env, stmt), False
        if kind is SCamlReturn:
            return self._do_camlreturn(env, stmt), False
        if kind is SGoto:
            grew = label_env.join_into(stmt.label, env, self._merge_cts)
            return env.reset(), grew
        if kind is SIf:
            return self._do_if(env, label_env, stmt)
        if kind is SIfUnboxed:
            return self._do_if_unboxed(env, label_env, stmt)
        if kind is SIfSumTag:
            return self._do_if_sum_tag(env, label_env, stmt)
        if kind is SIfIntTag:
            return self._do_if_int_tag(env, label_env, stmt)
        raise RuleError(Kind.TYPE_MISMATCH, f"unsupported statement `{stmt}`", stmt.span)

    # -- assignments and calls -----------------------------------------------------

    def _type_rhs(
        self, env: TypeEnv, rhs: Rhs, span: Span, index: int | None = None
    ) -> tuple[CType, Qualifier]:
        if isinstance(rhs, CallExp):
            return self._apply(env, rhs, span, index)
        return self.typer.type_expr(env, rhs)

    def _do_assign(self, env: TypeEnv, index: int, stmt: SAssign) -> TypeEnv:
        rhs_ct, rhs_qual = self._type_rhs(env, stmt.rhs, stmt.span, index)
        if stmt.lval is None:
            return env
        if isinstance(stmt.lval, VarExp):
            # (VSet Stmt): Γ[x ↦ ct[B{I}]{T}] — the binding is *replaced*,
            # so a local may be reused at a different type; join points
            # re-unify the ct components (see TypeEnv.join).
            name = stmt.lval.name
            if name not in env:
                self.ctx.report(
                    Kind.TYPE_MISMATCH,
                    stmt.span,
                    f"assignment to undeclared variable `{name}`",
                    self.fn.name,
                )
            if not self.ctx.options.flow_sensitive:
                rhs_qual = UNKNOWN_QUALIFIER
            return env.set(name, Entry(rhs_ct, rhs_qual))
        # (LSet Stmt): heap write; environment unchanged.
        self._do_heap_store(env, stmt.lval, rhs_ct, rhs_qual, stmt.span)
        return env

    def _do_heap_store(
        self,
        env: TypeEnv,
        lval: MemLval,
        rhs_ct: CType,
        rhs_qual: Qualifier,
        span: Span,
    ) -> None:
        if not rhs_qual.is_safe:
            self._unsafe(rhs_qual, span, "value stored to the heap")
        target = Deref(PtrAdd(lval.base, IntLit(lval.offset, span), span), span) \
            if lval.offset else Deref(lval.base, span)
        slot_ct, _slot_qual = self.typer.type_expr(env, target)
        try:
            self.ctx.unifier.unify_ct(slot_ct, rhs_ct)
        except UnificationError as exc:
            raise RuleError(
                Kind.TYPE_MISMATCH,
                f"heap store through `{lval}`: {exc.reason}",
                span,
            ) from exc

    def _apply(
        self, env: TypeEnv, call: CallExp, span: Span, index: int | None
    ) -> tuple[CType, Qualifier]:
        """(App): unify actuals against formals, thread effects, queue the
        protection obligation."""
        if call.is_indirect:
            self.ctx.report(
                Kind.FUNCTION_POINTER,
                span,
                f"call through function pointer `{call.func}`; no constraints "
                "generated",
                self.fn.name,
            )
            for arg in call.args:
                self.typer.type_expr(env, arg)
            return C_INT, UNKNOWN_QUALIFIER

        entry = self.ctx.functions.get(call.func)
        if entry is None:
            fn_ct = self._assume_external(env, call)
        elif isinstance(entry.ct, CFun):
            fn_ct = entry.ct
            if call.func in self.ctx.polymorphic:
                fn_ct = instantiate_ct(fn_ct)
        else:
            raise RuleError(
                Kind.TYPE_MISMATCH,
                f"`{call.func}` is not a function",
                span,
            )

        if len(fn_ct.params) != len(call.args):
            raise RuleError(
                Kind.ARITY_MISMATCH,
                f"`{call.func}` expects {len(fn_ct.params)} argument(s) but "
                f"is called with {len(call.args)}",
                span,
            )
        arg_quals: list[Qualifier] = []
        for position, (arg, param_ct) in enumerate(zip(call.args, fn_ct.params)):
            arg_ct, arg_qual = self.typer.type_expr(env, arg)
            arg_quals.append(arg_qual)
            if not arg_qual.is_safe:
                self._unsafe(
                    arg_qual, span, f"argument {position + 1} of `{call.func}`"
                )
            try:
                self.ctx.unifier.unify_ct(arg_ct, param_ct)
            except UnificationError as exc:
                raise RuleError(
                    Kind.TYPE_MISMATCH,
                    f"argument {position + 1} of `{call.func}`: {exc.reason}",
                    span,
                ) from exc

        # GC′ ⊑ GC — the callee's effect flows into ours.
        self.ctx.effect_constraints.constrain(fn_ct.effect, self.effect)

        if self.ctx.options.gc_effects and index is not None:
            live = self.liveness.live_before(index)
            candidates = [
                (name, env[name].ct)
                for name in sorted(live)
                if name in env and name not in self.protected
            ]
            if candidates:
                self.ctx.pending_gc_checks.append(
                    PendingGCCheck(
                        span=span,
                        function=self.fn.name,
                        callee=call.func,
                        effect=fn_ct.effect,
                        candidates=candidates,
                    )
                )
        return fn_ct.result, self._call_result_qual(call, arg_quals)

    def _call_result_qual(
        self, call: CallExp, arg_quals: list[Qualifier]
    ) -> Qualifier:
        """Allocators return a fresh block at offset 0 with a known tag."""
        tags = self.ctx.alloc_result_tags
        if tags is None:
            from ..cfront.macros import ALLOC_RESULT_TAG

            tags = self.ctx.alloc_result_tags = normalize_alloc_tags(
                ALLOC_RESULT_TAG
            )
        spec = tags.get(call.func)
        if spec is None:
            return UNKNOWN_QUALIFIER
        if spec.from_arg is not None:
            index = spec.from_arg
            if len(arg_quals) > index and is_const(arg_quals[index].tag):
                return Qualifier(BOXED, 0, arg_quals[index].tag)
            return Qualifier(BOXED, 0, FLAT_TOP)
        return Qualifier(BOXED, 0, spec.literal)

    def _assume_external(self, env: TypeEnv, call: CallExp) -> CFun:
        """Unknown library function: parameters shaped by the actuals,
        scalar result, no GC effect (it cannot reach the OCaml runtime)."""
        params = []
        for arg in call.args:
            arg_ct, _ = self.typer.type_expr(env, arg)
            params.append(arg_ct)
        fn_ct = CFun(params=tuple(params), result=C_INT, effect=NOGC)
        self.ctx.functions[call.func] = Entry(fn_ct)
        return fn_ct

    def _unsafe(self, qual: Qualifier, span: Span, what: str) -> None:
        if qual.offset is FLAT_TOP:
            self.ctx.report(
                Kind.UNKNOWN_OFFSET,
                span,
                f"{what} has a statically unknown block offset",
                self.fn.name,
            )
        else:
            raise RuleError(
                Kind.UNSAFE_VALUE,
                f"{what} points into the middle of a structured block "
                f"(offset {qual.offset})",
                span,
            )

    # -- returns ----------------------------------------------------------------

    def _do_return(self, env: TypeEnv, stmt: SReturn) -> TypeEnv:
        self._check_return_value(env, stmt.exp, stmt.span)
        if self.protected:
            # (Ret Stmt) requires P = ∅ — registered values must be released
            # with CAMLreturn.  §5.2: ocaml-mad and ocaml-vorbis bugs.
            self.ctx.report(
                Kind.MISSING_CAMLRETURN,
                stmt.span,
                f"`{self.fn.name}` registers "
                f"{', '.join(sorted(self.protected))} with the GC but exits "
                "with plain return",
                self.fn.name,
            )
        return env.reset()

    def _do_camlreturn(self, env: TypeEnv, stmt: SCamlReturn) -> TypeEnv:
        self._check_return_value(env, stmt.exp, stmt.span)
        if not self.protected:
            self.ctx.report(
                Kind.SPURIOUS_CAMLRETURN,
                stmt.span,
                f"CAMLreturn in `{self.fn.name}` but nothing was registered "
                "with CAMLparam/CAMLlocal",
                self.fn.name,
            )
        return env.reset()

    def _check_return_value(
        self, env: TypeEnv, exp: Expr | None, span: Span
    ) -> None:
        if exp is None:
            if not isinstance(self.return_ct, type(C_VOID)):
                try:
                    self.ctx.unifier.unify_ct(self.return_ct, C_VOID)
                except UnificationError:
                    self.ctx.report(
                        Kind.TYPE_MISMATCH,
                        span,
                        f"`{self.fn.name}` returns no value but is declared "
                        f"to return `{self.return_ct}`",
                        self.fn.name,
                    )
            return
        ct, qual = self.typer.type_expr(env, exp)
        if not qual.is_safe:
            self._unsafe(qual, span, "returned value")
        try:
            self.ctx.unifier.unify_ct(ct, self.return_ct)
        except UnificationError as exc:
            raise RuleError(
                Kind.TYPE_MISMATCH,
                f"return value of `{self.fn.name}`: {exc.reason}",
                span,
            ) from exc

    # -- branches ------------------------------------------------------------------

    def _do_if(
        self, env: TypeEnv, label_env: LabelEnv, stmt: SIf
    ) -> tuple[TypeEnv, bool]:
        ct, _qual = self.typer.type_expr(env, stmt.cond)
        shallow = self.typer._shallow(ct)
        if isinstance(shallow, CValue):
            raise RuleError(
                Kind.TYPE_MISMATCH,
                f"OCaml value `{stmt.cond}` used directly as a condition",
                stmt.span,
            )
        grew = label_env.join_into(stmt.label, env, self._merge_cts)
        return env, grew

    def _value_entry(self, env: TypeEnv, var: str, span: Span) -> Entry:
        entry = env.get(var)
        if entry is None:
            raise RuleError(Kind.TYPE_MISMATCH, f"unknown variable `{var}`", span)
        shallow = self.typer._shallow(entry.ct)
        if not isinstance(shallow, CValue):
            raise RuleError(
                Kind.TYPE_MISMATCH,
                f"tag test on `{var}` which is not an OCaml value "
                f"(it has C type `{entry.ct}`)",
                span,
            )
        return entry

    def _do_if_unboxed(
        self, env: TypeEnv, label_env: LabelEnv, stmt: SIfUnboxed
    ) -> tuple[TypeEnv, bool]:
        entry = self._value_entry(env, stmt.var, stmt.span)
        if not entry.qual.is_safe:
            self._unsafe(entry.qual, stmt.span, f"`{stmt.var}` in Is_long test")
        ct = self.typer._shallow(entry.ct)
        assert isinstance(ct, CValue)
        self.typer.as_repr(ct.mt, stmt.span)  # α unifies with (ψ, σ)
        if self.ctx.options.flow_sensitive:
            taken = env.set_qual(
                stmt.var, Qualifier(UNBOXED, 0, entry.qual.tag)
            )
            fall = env.set_qual(stmt.var, Qualifier(BOXED, 0, entry.qual.tag))
        else:
            taken = fall = env
        grew = label_env.join_into(stmt.label, taken, self._merge_cts)
        return fall, grew

    def _do_if_sum_tag(
        self, env: TypeEnv, label_env: LabelEnv, stmt: SIfSumTag
    ) -> tuple[TypeEnv, bool]:
        entry = self._value_entry(env, stmt.var, stmt.span)
        ct = self.typer._shallow(entry.ct)
        assert isinstance(ct, CValue)
        repr_type = self.typer.as_repr(ct.mt, stmt.span)
        if entry.qual.boxedness is not BOXED:
            # Reading the header is only sound when the value is a pointer.
            # Statically always-boxed types (Ψ = 0) need no dynamic test.
            psi = self.ctx.unifier.resolve_psi(repr_type.psi)
            statically_boxed = isinstance(psi, PsiConst) and psi.count == 0
            if entry.qual.boxedness is UNBOXED or not statically_boxed:
                raise RuleError(
                    Kind.BAD_FIELD_ACCESS,
                    f"Tag_val on `{stmt.var}` without establishing it is "
                    "boxed (missing Is_long/Is_block test?)",
                    stmt.span,
                )
        if not entry.qual.is_safe:
            self._unsafe(entry.qual, stmt.span, f"`{stmt.var}` in Tag_val test")
        self.typer.sigma_product_at(repr_type, stmt.tag, stmt.span)
        if self.ctx.options.flow_sensitive:
            taken = env.set_qual(stmt.var, Qualifier(BOXED, 0, stmt.tag))
        else:
            taken = env
        grew = label_env.join_into(stmt.label, taken, self._merge_cts)
        return env, grew

    def _do_if_int_tag(
        self, env: TypeEnv, label_env: LabelEnv, stmt: SIfIntTag
    ) -> tuple[TypeEnv, bool]:
        entry = self._value_entry(env, stmt.var, stmt.span)
        ct = self.typer._shallow(entry.ct)
        assert isinstance(ct, CValue)
        repr_type = self.typer.as_repr(ct.mt, stmt.span)
        if entry.qual.boxedness not in (UNBOXED,):
            # Comparing Int_val(x) against n is only meaningful for unboxed
            # data; allow it without a test when the type has no boxed part.
            sigma = self.ctx.unifier.resolve_sigma(repr_type.sigma)
            statically_unboxed = sigma.is_closed and not sigma.prods
            if entry.qual.boxedness is BOXED:
                raise RuleError(
                    Kind.BAD_INT_VAL,
                    f"Int_val comparison on `{stmt.var}` which is boxed here",
                    stmt.span,
                )
            if not statically_unboxed:
                raise RuleError(
                    Kind.BAD_INT_VAL,
                    f"Int_val comparison on `{stmt.var}` without establishing "
                    "it is unboxed (missing Is_long test?)",
                    stmt.span,
                )
        self.ctx.psi_constraints.require(
            stmt.tag,
            repr_type.psi,
            stmt.span,
            f"int_tag({stmt.var}) == {stmt.tag}",
            self.fn.name,
        )
        if self.ctx.options.flow_sensitive:
            taken = env.set_qual(stmt.var, Qualifier(UNBOXED, 0, stmt.tag))
        else:
            taken = env
        grew = label_env.join_into(stmt.label, taken, self._merge_cts)
        return env, grew
