"""Readable rendering of multi-lingual types.

``str()`` on type terms shows raw variables (``α17``, ``σ42``); this module
renders *resolved* types with stable, per-rendering variable names —
``'a, 'b, ...`` for mt variables, ``ψ1, σ1, π1`` for the representational
components — which is what the CLI and the examples print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .types import (
    CFun,
    CPtr,
    CStruct,
    CTVar,
    CType,
    CValue,
    CVoid,
    CInt,
    GCConst,
    GCEffect,
    MLType,
    MTArrow,
    MTCustom,
    MTRepr,
    MTVar,
    Pi,
    Psi,
    PsiConst,
    PsiVar,
    Sigma,
)
from .unify import Unifier


def _name_stream():
    index = 0
    while True:
        letters = "abcdefghijklmnopqrstuvwxyz"
        suffix, position = divmod(index, len(letters))
        yield "'" + letters[position] + (str(suffix) if suffix else "")
        index += 1


@dataclass
class TypePrinter:
    """Stateful printer: identical variables get identical names."""

    unifier: Unifier
    _mt_names: Dict[int, str] = field(default_factory=dict)
    _aux_names: Dict[int, str] = field(default_factory=dict)
    _counters: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._stream = _name_stream()

    def _mt_name(self, var: MTVar) -> str:
        if var.id not in self._mt_names:
            self._mt_names[var.id] = var.name or next(self._stream)
        return self._mt_names[var.id]

    def _aux_name(self, prefix: str, var_id: int) -> str:
        if var_id not in self._aux_names:
            self._counters[prefix] = self._counters.get(prefix, 0) + 1
            self._aux_names[var_id] = f"{prefix}{self._counters[prefix]}"
        return self._aux_names[var_id]

    # -- mt -------------------------------------------------------------------

    def mt(self, term: MLType) -> str:
        term = self.unifier.resolve_mt(term)
        if isinstance(term, MTVar):
            return self._mt_name(term)
        if isinstance(term, MTArrow):
            return f"({self.mt(term.param)} -> {self.mt(term.result)})"
        if isinstance(term, MTCustom):
            return f"{self.ct(term.ctype)} custom"
        if isinstance(term, MTRepr):
            return f"({self.psi(term.psi)}, {self.sigma(term.sigma)})"
        raise AssertionError(f"unknown mt {term!r}")

    def psi(self, term: Psi) -> str:
        term = self.unifier.resolve_psi(term)
        if isinstance(term, PsiVar):
            return self._aux_name("ψ", term.id)
        if isinstance(term, PsiConst):
            return str(term.count)
        return "⊤"

    def sigma(self, term: Sigma) -> str:
        term = self.unifier.resolve_sigma(term)
        parts = [self.pi(prod) for prod in term.prods]
        if term.tail is not None:
            parts.append(self._aux_name("σ", term.tail.id))
        return " + ".join(parts) if parts else "∅"

    def pi(self, term: Pi) -> str:
        term = self.unifier.resolve_pi(term)
        parts = [self.mt(elem) for elem in term.elems]
        if term.tail is not None:
            parts.append(self._aux_name("π", term.tail.id))
        if not parts:
            return "()"
        if len(parts) == 1:
            return f"({parts[0]})"
        return "(" + " × ".join(parts) + ")"

    # -- ct -------------------------------------------------------------------

    def ct(self, term: CType) -> str:
        term = self.unifier.resolve_ct(term)
        if isinstance(term, CVoid):
            return "void"
        if isinstance(term, CInt):
            return "int"
        if isinstance(term, CStruct):
            return f"struct {term.name}"
        if isinstance(term, CTVar):
            return self._aux_name("τ", term.id) if not term.name else f"?{term.name}"
        if isinstance(term, CValue):
            return f"{self.mt(term.mt)} value"
        if isinstance(term, CPtr):
            return f"{self.ct(term.target)} *"
        if isinstance(term, CFun):
            params = " × ".join(self.ct(p) for p in term.params) or "void"
            return f"({params} -[{self.effect(term.effect)}]-> {self.ct(term.result)})"
        raise AssertionError(f"unknown ct {term!r}")

    def effect(self, term: GCEffect) -> str:
        if isinstance(term, GCConst):
            return term.value
        return self._aux_name("γ", term.id)

    def signature(self, name: str, fn: CFun) -> str:
        """Render a function signature for reports."""
        params = ", ".join(self.ct(p) for p in fn.params) or "void"
        return (
            f"{name} : ({params}) -[{self.effect(fn.effect)}]-> "
            f"{self.ct(fn.result)}"
        )


def render_mt(unifier: Unifier, term: MLType) -> str:
    return TypePrinter(unifier).mt(term)


def render_ct(unifier: Unifier, term: CType) -> str:
    return TypePrinter(unifier).ct(term)
