"""Unification for the multi-lingual type language (paper §3.3.3).

The inference rules generate equality constraints ``ct = ct'`` and
``mt = mt'`` which are solved by ordinary unification, with three twists:

* ``Σ`` and ``Π`` are *rows* (Rémy-style): a row may end in a variable, and
  unifying a short open row against a longer one grows the short row.  This
  is how sum and product types "grow during inference" — every
  ``if_sum_tag(x) == n`` test adds products up to index ``n``.
* ``Ψ`` components unify exactly: a known nullary-constructor count ``n``
  never unifies with ``⊤`` (an OCaml ``int`` is not a sum).
* unifying two function types does not equate their effects directly; it
  records mutual ``⊑`` constraints which the GC solver later closes by
  reachability.

The substitution lives in this class (terms themselves stay immutable).
"""

from __future__ import annotations

from typing import Callable, Optional

from .types import (
    CFun,
    CPtr,
    CStruct,
    CTVar,
    CType,
    CValue,
    CVoid,
    CInt,
    GCEffect,
    MLType,
    MTArrow,
    MTCustom,
    MTRepr,
    MTVar,
    PSI_TOP,
    Pi,
    PiVar,
    Psi,
    PsiConst,
    PsiVar,
    Sigma,
    SigmaVar,
)


class UnificationError(Exception):
    """Raised when two types cannot be made equal."""

    def __init__(self, left: object, right: object, reason: str = ""):
        self.left = left
        self.right = right
        self.reason = reason or f"cannot unify `{left}` with `{right}`"
        super().__init__(self.reason)


class OccursCheckError(UnificationError):
    """A variable would be bound to a term containing itself."""

    def __init__(self, var: object, term: object):
        super().__init__(var, term, f"occurs check: `{var}` occurs in `{term}`")


EffectHook = Callable[[GCEffect, GCEffect], None]


class Unifier:
    """Union-find style substitution over mt / Ψ / Σ / Π variables."""

    def __init__(self, on_effect_equal: Optional[EffectHook] = None):
        self._mt: dict[int, MLType] = {}
        self._psi: dict[int, Psi] = {}
        self._sigma: dict[int, Sigma] = {}
        self._pi: dict[int, Pi] = {}
        self._ct: dict[int, CType] = {}
        self._on_effect_equal = on_effect_equal
        #: number of successful unification steps, for ablation metrics
        self.steps = 0

    # -- resolution ---------------------------------------------------------

    def resolve_mt(self, mt: MLType) -> MLType:
        """Follow variable bindings to the representative (shallow).

        Chains are fully path-compressed: every variable on the walk is
        re-bound straight to the representative (bindings are write-once
        per run, so the shortcut can never go stale).
        """
        table = self._mt
        seen = None
        while isinstance(mt, MTVar):
            bound = table.get(mt.id)
            if bound is None:
                break
            if seen is None:
                seen = [mt.id]
            else:
                seen.append(mt.id)
            mt = bound
        if seen is not None and len(seen) > 1:
            for var_id in seen[:-1]:
                table[var_id] = mt
        return mt

    def resolve_psi(self, psi: Psi) -> Psi:
        table = self._psi
        while isinstance(psi, PsiVar):
            bound = table.get(psi.id)
            if bound is None:
                break
            psi = bound
        return psi

    def resolve_ct(self, ct: CType) -> CType:
        """Follow C-type variable bindings to the representative (shallow),
        path-compressing like :meth:`resolve_mt`."""
        table = self._ct
        seen = None
        while isinstance(ct, CTVar):
            bound = table.get(ct.id)
            if bound is None:
                break
            if seen is None:
                seen = [ct.id]
            else:
                seen.append(ct.id)
            ct = bound
        if seen is not None and len(seen) > 1:
            for var_id in seen[:-1]:
                table[var_id] = ct
        return ct

    def resolve_sigma(self, sigma: Sigma) -> Sigma:
        """Normalize a sum row: splice in every bound tail variable."""
        tail = sigma.tail
        if tail is None or tail.id not in self._sigma:
            return sigma  # already normal — the overwhelmingly common case
        prods = list(sigma.prods)
        while tail is not None and tail.id in self._sigma:
            bound = self._sigma[tail.id]
            prods.extend(bound.prods)
            tail = bound.tail
        return Sigma(prods=tuple(prods), tail=tail)

    def resolve_pi(self, pi: Pi) -> Pi:
        """Normalize a product row: splice in every bound tail variable."""
        tail = pi.tail
        if tail is None or tail.id not in self._pi:
            return pi  # already normal — the overwhelmingly common case
        elems = list(pi.elems)
        while tail is not None and tail.id in self._pi:
            bound = self._pi[tail.id]
            elems.extend(bound.elems)
            tail = bound.tail
        return Pi(elems=tuple(elems), tail=tail)

    def deep_resolve_mt(self, mt: MLType) -> MLType:
        """Fully substitute an mt term (for display and final checks)."""
        mt = self.resolve_mt(mt)
        if isinstance(mt, MTArrow):
            return MTArrow(
                self.deep_resolve_mt(mt.param), self.deep_resolve_mt(mt.result)
            )
        if isinstance(mt, MTCustom):
            return MTCustom(self.deep_resolve_ct(mt.ctype))
        if isinstance(mt, MTRepr):
            return MTRepr(self.resolve_psi(mt.psi), self.deep_resolve_sigma(mt.sigma))
        return mt

    def deep_resolve_sigma(self, sigma: Sigma) -> Sigma:
        sigma = self.resolve_sigma(sigma)
        return Sigma(
            prods=tuple(self.deep_resolve_pi(p) for p in sigma.prods),
            tail=sigma.tail,
        )

    def deep_resolve_pi(self, pi: Pi) -> Pi:
        pi = self.resolve_pi(pi)
        return Pi(
            elems=tuple(self.deep_resolve_mt(e) for e in pi.elems),
            tail=pi.tail,
        )

    def deep_resolve_ct(self, ct: CType) -> CType:
        ct = self.resolve_ct(ct)
        if isinstance(ct, CValue):
            return CValue(self.deep_resolve_mt(ct.mt))
        if isinstance(ct, CPtr):
            return CPtr(self.deep_resolve_ct(ct.target))
        if isinstance(ct, CFun):
            return CFun(
                params=tuple(self.deep_resolve_ct(p) for p in ct.params),
                result=self.deep_resolve_ct(ct.result),
                effect=ct.effect,
            )
        return ct

    # -- occurs checks -------------------------------------------------------

    def _occurs(self, var: object, root: object) -> bool:
        """Iterative worklist occurs check, shared by every variable sort.

        Replaces the recursive ``_ct_occurs``/``_mt_occurs``/``_sigma_occurs``
        /``_pi_occurs`` family: one explicit stack walks the term through the
        substitution, and a visited set keeps the traversal linear on the
        DAGs that hash-consing creates (the recursive version re-walked
        shared subterms exponentially often in the worst case).
        """
        stack: list[object] = [root]
        seen: set[int] = set()
        while stack:
            node = stack.pop()
            if isinstance(node, MTVar):
                node = self.resolve_mt(node)
            elif isinstance(node, CTVar):
                node = self.resolve_ct(node)
            elif isinstance(node, PsiVar):
                node = self.resolve_psi(node)
            if node is var:
                return True
            node_id = id(node)
            if node_id in seen:
                continue
            seen.add(node_id)
            if isinstance(node, CValue):
                stack.append(node.mt)
            elif isinstance(node, CPtr):
                stack.append(node.target)
            elif isinstance(node, CFun):
                stack.extend(node.params)
                stack.append(node.result)
            elif isinstance(node, MTArrow):
                stack.append(node.param)
                stack.append(node.result)
            elif isinstance(node, MTCustom):
                stack.append(node.ctype)
            elif isinstance(node, MTRepr):
                stack.append(node.psi)
                stack.append(node.sigma)
            elif isinstance(node, Sigma):
                node = self.resolve_sigma(node)
                if node.tail is var:
                    return True
                stack.extend(node.prods)
            elif isinstance(node, Pi):
                node = self.resolve_pi(node)
                if node.tail is var:
                    return True
                stack.extend(node.elems)
        return False

    # -- unification ----------------------------------------------------------

    def unify_ct(self, left: CType, right: CType) -> None:
        """Solve ``ct = ct'`` or raise :class:`UnificationError`."""
        self.steps += 1
        if left is right:  # interned terms make this hit structurally
            return
        left = self.resolve_ct(left)
        right = self.resolve_ct(right)
        if left is right:
            return
        if isinstance(left, CTVar):
            if self._occurs(left, right):
                raise OccursCheckError(left, right)
            self._ct[left.id] = right
            return
        if isinstance(right, CTVar):
            if self._occurs(right, left):
                raise OccursCheckError(right, left)
            self._ct[right.id] = left
            return
        if isinstance(left, CVoid) and isinstance(right, CVoid):
            return
        if isinstance(left, CInt) and isinstance(right, CInt):
            return
        if isinstance(left, CStruct) and isinstance(right, CStruct):
            if left.name != right.name:
                raise UnificationError(left, right)
            return
        if isinstance(left, CValue) and isinstance(right, CValue):
            self.unify_mt(left.mt, right.mt)
            return
        if isinstance(left, CPtr) and isinstance(right, CPtr):
            self.unify_ct(left.target, right.target)
            return
        if isinstance(left, CFun) and isinstance(right, CFun):
            if len(left.params) != len(right.params):
                raise UnificationError(
                    left,
                    right,
                    f"function arity mismatch: {len(left.params)} vs "
                    f"{len(right.params)}",
                )
            for l_param, r_param in zip(left.params, right.params):
                self.unify_ct(l_param, r_param)
            self.unify_ct(left.result, right.result)
            if self._on_effect_equal is not None:
                self._on_effect_equal(left.effect, right.effect)
            return
        raise UnificationError(left, right)

    def unify_mt(self, left: MLType, right: MLType) -> None:
        """Solve ``mt = mt'`` or raise :class:`UnificationError`."""
        self.steps += 1
        if left is right:  # interned terms make this hit structurally
            return
        left = self.resolve_mt(left)
        right = self.resolve_mt(right)
        if left is right:
            return
        if isinstance(left, MTVar):
            if self._occurs(left, right):
                raise OccursCheckError(left, right)
            self._mt[left.id] = right
            return
        if isinstance(right, MTVar):
            if self._occurs(right, left):
                raise OccursCheckError(right, left)
            self._mt[right.id] = left
            return
        if isinstance(left, MTArrow) and isinstance(right, MTArrow):
            self.unify_mt(left.param, right.param)
            self.unify_mt(left.result, right.result)
            return
        if isinstance(left, MTCustom) and isinstance(right, MTCustom):
            self.unify_ct(left.ctype, right.ctype)
            return
        if isinstance(left, MTRepr) and isinstance(right, MTRepr):
            self.unify_psi(left.psi, right.psi)
            self.unify_sigma(left.sigma, right.sigma)
            return
        raise UnificationError(left, right)

    def unify_psi(self, left: Psi, right: Psi) -> None:
        """Ψ components unify exactly; ``n`` does not unify with ``⊤``."""
        left = self.resolve_psi(left)
        right = self.resolve_psi(right)
        if left is right:
            return
        if isinstance(left, PsiVar):
            self._psi[left.id] = right
            return
        if isinstance(right, PsiVar):
            self._psi[right.id] = left
            return
        if isinstance(left, PsiConst) and isinstance(right, PsiConst):
            if left.count != right.count:
                raise UnificationError(
                    left,
                    right,
                    f"sum types have different nullary-constructor counts "
                    f"({left.count} vs {right.count})",
                )
            return
        if left is PSI_TOP and right is PSI_TOP:
            return
        raise UnificationError(
            left,
            right,
            f"an integer type (Ψ=⊤) is not a sum type (Ψ={right if left is PSI_TOP else left})",
        )

    def unify_sigma(self, left: Sigma, right: Sigma) -> None:
        """Row-unify two sums product-by-product in tag order."""
        left = self.resolve_sigma(left)
        right = self.resolve_sigma(right)
        common = min(len(left.prods), len(right.prods))
        for l_prod, r_prod in zip(left.prods[:common], right.prods[:common]):
            self.unify_pi(l_prod, r_prod)
        l_rest = Sigma(prods=left.prods[common:], tail=left.tail)
        r_rest = Sigma(prods=right.prods[common:], tail=right.tail)
        if l_rest.prods:
            # right must be open so it can grow to include the extra products
            self._bind_sigma_tail(right, l_rest)
        elif r_rest.prods:
            self._bind_sigma_tail(left, r_rest)
        else:
            self._unify_sigma_tails(left.tail, right.tail)

    def _bind_sigma_tail(self, short: Sigma, rest: Sigma) -> None:
        if short.tail is None:
            raise UnificationError(
                short,
                rest,
                "sum type has fewer non-nullary constructors than required",
            )
        if self._occurs(short.tail, rest):
            raise OccursCheckError(short.tail, rest)
        self._sigma[short.tail.id] = rest

    def _unify_sigma_tails(
        self, left: Optional[SigmaVar], right: Optional[SigmaVar]
    ) -> None:
        if left is right:
            return
        if left is not None and left.id in self._sigma:
            raise AssertionError("unresolved sigma tail after normalization")
        if left is None and right is None:
            return
        if left is None:
            assert right is not None
            self._sigma[right.id] = Sigma(prods=(), tail=None)
        elif right is None:
            self._sigma[left.id] = Sigma(prods=(), tail=None)
        else:
            self._sigma[left.id] = Sigma(prods=(), tail=right)

    def unify_pi(self, left: Pi, right: Pi) -> None:
        """Row-unify two products element-by-element."""
        left = self.resolve_pi(left)
        right = self.resolve_pi(right)
        common = min(len(left.elems), len(right.elems))
        for l_elem, r_elem in zip(left.elems[:common], right.elems[:common]):
            self.unify_mt(l_elem, r_elem)
        l_rest = Pi(elems=left.elems[common:], tail=left.tail)
        r_rest = Pi(elems=right.elems[common:], tail=right.tail)
        if l_rest.elems:
            self._bind_pi_tail(right, l_rest)
        elif r_rest.elems:
            self._bind_pi_tail(left, r_rest)
        else:
            self._unify_pi_tails(left.tail, right.tail)

    def _bind_pi_tail(self, short: Pi, rest: Pi) -> None:
        if short.tail is None:
            raise UnificationError(
                short,
                rest,
                "structured block has fewer fields than the access requires",
            )
        if self._occurs(short.tail, rest):
            raise OccursCheckError(short.tail, rest)
        self._pi[short.tail.id] = rest

    def _unify_pi_tails(self, left: Optional[PiVar], right: Optional[PiVar]) -> None:
        if left is right:
            return
        if left is None and right is None:
            return
        if left is None:
            assert right is not None
            self._pi[right.id] = Pi(elems=(), tail=None)
        elif right is None:
            self._pi[left.id] = Pi(elems=(), tail=None)
        else:
            self._pi[left.id] = Pi(elems=(), tail=right)

    # -- queries ---------------------------------------------------------------

    def sigma_min_size(self, sigma: Sigma) -> int:
        """Number of non-nullary constructors known so far (``|Σ|`` lower bound)."""
        return len(self.resolve_sigma(sigma).prods)

    def is_heap_pointer_type(self, ct: CType) -> bool:
        """ValPtrs membership (paper (App) rule).

        A variable may point into the OCaml heap when its type is
        ``(Ψ, Σ) value`` with ``|Σ| > 0``, or when it is one of the boxed
        builtins (string/float/boxed ints) or an abstract OCaml type —
        modelled here as ``caml_* / abstract_*`` custom blocks, which live
        on the OCaml heap just the same.
        """
        if not isinstance(ct, CValue):
            return False
        mt = self.resolve_mt(ct.mt)
        if isinstance(mt, MTRepr):
            return self.sigma_min_size(mt.sigma) > 0
        if isinstance(mt, MTCustom):
            inner = self.resolve_ct(mt.ctype)
            if isinstance(inner, CPtr):
                target = self.resolve_ct(inner.target)
                if isinstance(target, CStruct):
                    name = target.name
                    return name.startswith("caml_") or name.startswith("abstract_")
        return False


#: id(ct) -> (ct, has_mt_vars).  Keeping the term itself in the value pins
#: its id for the cache's lifetime; bounded like the intern caches.
_VARFREE_MEMO: dict[int, tuple[CType, bool]] = {}
_VARFREE_MEMO_LIMIT = 4096


def _has_mt_vars(ct: CType) -> bool:
    """Whether any ``MTVar`` occurs in ``ct`` (raw structure, no subst).

    Memoized by identity: polymorphic builtins are canonical per-process
    objects (their seed tables are memoized), so each is walked once and
    every later call site gets the answer for free.
    """
    memo = _VARFREE_MEMO.get(id(ct))
    if memo is not None and memo[0] is ct:
        return memo[1]
    from .types import iter_subterms

    answer = any(isinstance(node, MTVar) for node in iter_subterms(ct))
    if len(_VARFREE_MEMO) >= _VARFREE_MEMO_LIMIT:
        _VARFREE_MEMO.clear()
    _VARFREE_MEMO[id(ct)] = (ct, answer)
    return answer


def instantiate_ct(ct: CType, mapping: Optional[dict[int, MTVar]] = None) -> CType:
    """Copy a ct with all mt variables replaced by fresh ones.

    Used for C functions hand-annotated as polymorphic (paper §5.1 notes 4
    such annotations in the benchmark suite) and for stdlib repository
    entries that mention type variables.

    Terms without mt variables instantiate to themselves, so they are
    returned unchanged (no copy) — the common case for scalar-only
    builtins once the seed tables are shared per process.
    """
    if mapping is None and not _has_mt_vars(ct):
        return ct
    if mapping is None:
        mapping = {}

    def fresh_for(var: MTVar) -> MTVar:
        if var.id not in mapping:
            mapping[var.id] = MTVar(name=var.name)
        return mapping[var.id]

    def go_ct(term: CType) -> CType:
        if isinstance(term, CValue):
            return CValue(go_mt(term.mt))
        if isinstance(term, CPtr):
            return CPtr(go_ct(term.target))
        if isinstance(term, CFun):
            return CFun(
                params=tuple(go_ct(p) for p in term.params),
                result=go_ct(term.result),
                effect=term.effect,
            )
        return term

    def go_mt(term: MLType) -> MLType:
        if isinstance(term, MTVar):
            return fresh_for(term)
        if isinstance(term, MTArrow):
            return MTArrow(go_mt(term.param), go_mt(term.result))
        if isinstance(term, MTCustom):
            return MTCustom(go_ct(term.ctype))
        if isinstance(term, MTRepr):
            return MTRepr(
                term.psi,
                Sigma(
                    prods=tuple(
                        Pi(
                            elems=tuple(go_mt(e) for e in prod.elems),
                            tail=prod.tail,
                        )
                        for prod in term.sigma.prods
                    ),
                    tail=term.sigma.tail,
                ),
            )
        return term

    return go_ct(ct)
