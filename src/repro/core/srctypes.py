"""The *source* type languages of paper Figure 1.

These are the types as they appear in program text — OCaml types on the
left of an ``external`` declaration, C types in declarations — before being
translated into the multi-lingual language of :mod:`repro.core.types` by
:mod:`repro.core.translate`.

The OCaml grammar here is a superset of Figure 1a: real glue code mentions
``bool``, ``char``, ``string``, ``float``, ``option``, ``list``, ``array``,
records, opaque/abstract types and polymorphic variants, so the repository
must at least represent them (polymorphic variants are represented but
unsupported by the analysis, which reports them — that is the paper's own
false-positive source, §5.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from .intern import InternedMeta
from typing import Sequence, Tuple, Union


# ---------------------------------------------------------------------------
# OCaml source types (Figure 1a, extended)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SUnit(metaclass=InternedMeta):
    def __str__(self) -> str:
        return "unit"


@dataclass(frozen=True)
class SInt(metaclass=InternedMeta):
    def __str__(self) -> str:
        return "int"


@dataclass(frozen=True)
class SBool(metaclass=InternedMeta):
    def __str__(self) -> str:
        return "bool"


@dataclass(frozen=True)
class SChar(metaclass=InternedMeta):
    def __str__(self) -> str:
        return "char"


@dataclass(frozen=True)
class SString(metaclass=InternedMeta):
    def __str__(self) -> str:
        return "string"


@dataclass(frozen=True)
class SFloat(metaclass=InternedMeta):
    def __str__(self) -> str:
        return "float"


@dataclass(frozen=True)
class SVar(metaclass=InternedMeta):
    """A type variable ``'a``."""

    name: str

    def __str__(self) -> str:
        return f"'{self.name}"


@dataclass(frozen=True)
class SArrow(metaclass=InternedMeta):
    param: "MLSrcType"
    result: "MLSrcType"

    def __str__(self) -> str:
        param = f"({self.param})" if isinstance(self.param, SArrow) else str(self.param)
        return f"{param} -> {self.result}"


@dataclass(frozen=True)
class STuple(metaclass=InternedMeta):
    elems: Tuple["MLSrcType", ...]

    def __str__(self) -> str:
        return " * ".join(str(e) for e in self.elems)


@dataclass(frozen=True)
class SConstrApp(metaclass=InternedMeta):
    """A named type possibly applied to arguments: ``int list``, ``'a ref``."""

    name: str
    args: Tuple["MLSrcType", ...] = ()

    def __str__(self) -> str:
        if not self.args:
            return self.name
        if len(self.args) == 1:
            return f"{self.args[0]} {self.name}"
        inner = ", ".join(str(a) for a in self.args)
        return f"({inner}) {self.name}"


@dataclass(frozen=True)
class SConstructor(metaclass=InternedMeta):
    """One constructor of a sum declaration: ``A of int * int`` or ``B``."""

    name: str
    args: Tuple["MLSrcType", ...] = ()

    @property
    def is_nullary(self) -> bool:
        return not self.args

    def __str__(self) -> str:
        if self.is_nullary:
            return self.name
        return f"{self.name} of {' * '.join(str(a) for a in self.args)}"


@dataclass(frozen=True)
class SSum(metaclass=InternedMeta):
    """A resolved variant type body."""

    constructors: Tuple[SConstructor, ...]

    def nullary(self) -> Tuple[SConstructor, ...]:
        return tuple(c for c in self.constructors if c.is_nullary)

    def non_nullary(self) -> Tuple[SConstructor, ...]:
        return tuple(c for c in self.constructors if not c.is_nullary)

    def __str__(self) -> str:
        return " | ".join(str(c) for c in self.constructors)


@dataclass(frozen=True)
class SField(metaclass=InternedMeta):
    """One record field; mutability does not change the representation."""

    name: str
    type: "MLSrcType"
    mutable: bool = False

    def __str__(self) -> str:
        prefix = "mutable " if self.mutable else ""
        return f"{prefix}{self.name}: {self.type}"


@dataclass(frozen=True)
class SRecord(metaclass=InternedMeta):
    """A resolved record type body (represented like a tuple)."""

    fields: Tuple[SField, ...]

    def __str__(self) -> str:
        return "{ " + "; ".join(str(f) for f in self.fields) + " }"


@dataclass(frozen=True)
class SPolyVariant(metaclass=InternedMeta):
    """``[ `A | `B of int ]`` — unsupported by the analysis, flagged on use."""

    tags: Tuple[SConstructor, ...]

    def __str__(self) -> str:
        return "[ " + " | ".join("`" + str(t) for t in self.tags) + " ]"


@dataclass(frozen=True)
class SOpaque(metaclass=InternedMeta):
    """An abstract type whose definition is hidden (treated as custom data)."""

    name: str

    def __str__(self) -> str:
        return f"<abstr:{self.name}>"


MLSrcType = Union[
    SUnit,
    SInt,
    SBool,
    SChar,
    SString,
    SFloat,
    SVar,
    SArrow,
    STuple,
    SConstrApp,
    SSum,
    SRecord,
    SPolyVariant,
    SOpaque,
]


def arrow_chain(mltype: MLSrcType) -> list[MLSrcType]:
    """Split ``t1 -> t2 -> ... -> tn`` into ``[t1, ..., tn]``.

    The last element is the (non-arrow) result type; a non-arrow input
    yields a single-element list.
    """
    chain: list[MLSrcType] = []
    node = mltype
    while isinstance(node, SArrow):
        chain.append(node.param)
        node = node.result
    chain.append(node)
    return chain


def make_arrows(params: Sequence[MLSrcType], result: MLSrcType) -> MLSrcType:
    """Inverse of :func:`arrow_chain`."""
    node = result
    for param in reversed(params):
        node = SArrow(param, node)
    return node


# ---------------------------------------------------------------------------
# C source types (Figure 1b, extended with the scalar zoo of real headers)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CSrcVoid(metaclass=InternedMeta):
    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class CSrcScalar(metaclass=InternedMeta):
    """Any C arithmetic type; ``spelling`` keeps the original for messages."""

    spelling: str = "int"

    def __str__(self) -> str:
        return self.spelling


@dataclass(frozen=True)
class CSrcValue(metaclass=InternedMeta):
    """The OCaml FFI ``value`` typedef."""

    def __str__(self) -> str:
        return "value"


@dataclass(frozen=True)
class CSrcPtr(metaclass=InternedMeta):
    target: "CSrcType"

    def __str__(self) -> str:
        return f"{self.target} *"


@dataclass(frozen=True)
class CSrcStruct(metaclass=InternedMeta):
    name: str

    def __str__(self) -> str:
        return f"struct {self.name}"


@dataclass(frozen=True)
class CSrcFun(metaclass=InternedMeta):
    params: Tuple["CSrcType", ...]
    result: "CSrcType"

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        return f"{self.result} (*)({params})"


CSrcType = Union[CSrcVoid, CSrcScalar, CSrcValue, CSrcPtr, CSrcStruct, CSrcFun]


def is_value_src(ctype: CSrcType) -> bool:
    return isinstance(ctype, CSrcValue)


def is_pointer_src(ctype: CSrcType) -> bool:
    return isinstance(ctype, (CSrcPtr, CSrcFun))
