"""The multi-lingual type language of paper Figure 3.

C types ``ct`` embed extended OCaml types ``mt`` at ``value``; OCaml types
embed C types back via ``ct custom``.  OCaml structured data is modelled by
*representational types* ``(Ψ, Σ)``:

* ``Ψ`` bounds the unboxed values — an exact nullary-constructor count
  ``n``, the unconstrained ``⊤`` (any integer), or a variable ``ψ``;
* ``Σ`` is a *row* of products ``Π``, one per non-nullary constructor, in
  tag order; rows may end in a row variable ``σ`` so sums can grow during
  inference (likewise ``Π`` rows of element types may end in ``π``).

Function types carry a garbage-collection effect ``γ | gc | nogc``.

All terms are immutable; inference variables are bound through the
union-find substitution kept by :class:`repro.core.unify.Unifier`.

Structural constructors are hash-consed via
:class:`repro.core.intern.InternedMeta`, so structurally equal terms are
identical objects and the unifier's ``a is b`` fast path fires on them.
The variable classes (``eq=False``) are identity-keyed and never
interned; ``CValue``/``CFun`` almost always embed fresh variables, so
they are plain (slotted) constructors — interning them would only miss.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from .intern import InternedMeta
from typing import Iterator, Optional, Sequence, Tuple, Union

_COUNTER = itertools.count()


def _next_id() -> int:
    return next(_COUNTER)


# ---------------------------------------------------------------------------
# GC effects
# ---------------------------------------------------------------------------


class GCConst(enum.Enum):
    """The two-point effect lattice ``nogc ⊑ gc``."""

    NOGC = "nogc"
    GC = "gc"

    def leq(self, other: "GCConst") -> bool:
        return self is GCConst.NOGC or other is GCConst.GC

    def __str__(self) -> str:
        return self.value


NOGC = GCConst.NOGC
GC = GCConst.GC


@dataclass(frozen=True, eq=False, slots=True)
class GCVar:
    """An effect variable ``γ``; solved by reachability (paper §3.3.3)."""

    name: str = ""
    id: int = field(default_factory=_next_id)

    def __str__(self) -> str:
        return self.name or f"γ{self.id}"


GCEffect = Union[GCConst, GCVar]


def fresh_gc(name: str = "") -> GCVar:
    return GCVar(name=name)


# ---------------------------------------------------------------------------
# Ψ — unboxed-value bounds
# ---------------------------------------------------------------------------


@dataclass(frozen=True, eq=False, slots=True)
class PsiVar:
    """A variable ``ψ`` over nullary-constructor counts."""

    id: int = field(default_factory=_next_id)

    def __str__(self) -> str:
        return f"ψ{self.id}"


@dataclass(frozen=True)
class PsiConst(metaclass=InternedMeta):
    """An exact count ``n`` of nullary constructors."""

    count: int

    def __str__(self) -> str:
        return str(self.count)


class _PsiTop:
    """``⊤`` — the type's unboxed values may be any integer."""

    _instance: Optional["_PsiTop"] = None

    def __new__(cls) -> "_PsiTop":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __str__(self) -> str:
        return "⊤"

    def __repr__(self) -> str:
        return "PSI_TOP"


PSI_TOP = _PsiTop()

Psi = Union[PsiVar, PsiConst, _PsiTop]


def fresh_psi() -> PsiVar:
    return PsiVar()


# ---------------------------------------------------------------------------
# Π — products (rows of element types)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, eq=False, slots=True)
class PiVar:
    """A product row variable ``π``."""

    id: int = field(default_factory=_next_id)

    def __str__(self) -> str:
        return f"π{self.id}"


@dataclass(frozen=True)
class Pi(metaclass=InternedMeta):
    """A product ``mt₀ × ... × mtₖ × tail`` (tail ``None`` means closed)."""

    elems: Tuple["MLType", ...] = ()
    tail: Optional[PiVar] = None

    @property
    def is_closed(self) -> bool:
        return self.tail is None

    def __str__(self) -> str:
        parts = [str(e) for e in self.elems]
        if self.tail is not None:
            parts.append(str(self.tail))
        if not parts:
            return "∅"
        return " × ".join(parts)


def fresh_pi_row() -> Pi:
    """An entirely unknown product: ``π`` alone."""
    return Pi(elems=(), tail=PiVar())


def closed_pi(elems: Sequence["MLType"]) -> Pi:
    return Pi(elems=tuple(elems), tail=None)


# ---------------------------------------------------------------------------
# Σ — sums (rows of products, in tag order)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, eq=False, slots=True)
class SigmaVar:
    """A sum row variable ``σ``."""

    id: int = field(default_factory=_next_id)

    def __str__(self) -> str:
        return f"σ{self.id}"


@dataclass(frozen=True)
class Sigma(metaclass=InternedMeta):
    """A sum ``Π₀ + ... + Πⱼ + tail`` (tail ``None`` means closed)."""

    prods: Tuple[Pi, ...] = ()
    tail: Optional[SigmaVar] = None

    @property
    def is_closed(self) -> bool:
        return self.tail is None

    def __str__(self) -> str:
        parts = [f"({p})" for p in self.prods]
        if self.tail is not None:
            parts.append(str(self.tail))
        if not parts:
            return "∅"
        return " + ".join(parts)


EMPTY_SIGMA = Sigma(prods=(), tail=None)


def fresh_sigma_row() -> Sigma:
    """An entirely unknown sum: ``σ`` alone."""
    return Sigma(prods=(), tail=SigmaVar())


def closed_sigma(prods: Sequence[Pi]) -> Sigma:
    return Sigma(prods=tuple(prods), tail=None)


# ---------------------------------------------------------------------------
# mt — extended OCaml types
# ---------------------------------------------------------------------------


@dataclass(frozen=True, eq=False, slots=True)
class MTVar:
    """A monomorphic OCaml type variable ``α``."""

    name: str = ""
    id: int = field(default_factory=_next_id)

    def __str__(self) -> str:
        return self.name or f"α{self.id}"


@dataclass(frozen=True)
class MTArrow(metaclass=InternedMeta):
    """An OCaml function type ``mt → mt`` (curried, one step)."""

    param: "MLType"
    result: "MLType"

    def __str__(self) -> str:
        return f"({self.param} → {self.result})"


@dataclass(frozen=True)
class MTCustom(metaclass=InternedMeta):
    """``ct custom`` — C data smuggled through OCaml at an opaque type."""

    ctype: "CType"

    def __str__(self) -> str:
        return f"{self.ctype} custom"


@dataclass(frozen=True)
class MTRepr(metaclass=InternedMeta):
    """A representational type ``(Ψ, Σ)``."""

    psi: Psi
    sigma: Sigma

    def __str__(self) -> str:
        return f"({self.psi}, {self.sigma})"


MLType = Union[MTVar, MTArrow, MTCustom, MTRepr]


def fresh_mt(name: str = "") -> MTVar:
    return MTVar(name=name)


def fresh_repr() -> MTRepr:
    """A representational type about which nothing is known: ``(ψ, σ)``."""
    return MTRepr(psi=fresh_psi(), sigma=fresh_sigma_row())


#: ρ(unit) = (1, ∅) — the singleton unboxed value 0.
UNIT_REPR = MTRepr(psi=PsiConst(1), sigma=EMPTY_SIGMA)

#: ρ(int) = (⊤, ∅) — any unboxed integer.
INT_REPR = MTRepr(psi=PSI_TOP, sigma=EMPTY_SIGMA)

#: ρ(bool) = (2, ∅) — false and true are the two nullary constructors.
BOOL_REPR = MTRepr(psi=PsiConst(2), sigma=EMPTY_SIGMA)


# ---------------------------------------------------------------------------
# ct — C types
# ---------------------------------------------------------------------------


class CVoid:
    """The C ``void`` type (singleton)."""

    _instance: Optional["CVoid"] = None

    def __new__(cls) -> "CVoid":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __str__(self) -> str:
        return "void"

    def __repr__(self) -> str:
        return "C_VOID"


C_VOID = CVoid()


class CInt:
    """All C scalar arithmetic types, collapsed as in the paper (singleton)."""

    _instance: Optional["CInt"] = None

    def __new__(cls) -> "CInt":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __str__(self) -> str:
        return "int"

    def __repr__(self) -> str:
        return "C_INT"


C_INT = CInt()


@dataclass(frozen=True)
class CStruct(metaclass=InternedMeta):
    """A named aggregate (struct/union) type, opaque to the analysis."""

    name: str

    def __str__(self) -> str:
        return f"struct {self.name}"


@dataclass(frozen=True, eq=False, slots=True)
class CTVar:
    """An unknown C type — the hidden representation of an opaque OCaml type.

    An ``external`` mentioning an abstract type gives C no information about
    the representation; the first cast in glue code pins it down, and any
    later use at a different C type is the cross-language cast the paper's
    custom types exist to forbid (§2 end).
    """

    name: str = ""
    id: int = field(default_factory=_next_id)

    def __str__(self) -> str:
        return self.name or f"τ{self.id}"


@dataclass(frozen=True, slots=True)
class CValue:
    """``mt value`` — OCaml data seen from C."""

    mt: MLType

    def __str__(self) -> str:
        return f"{self.mt} value"


@dataclass(frozen=True)
class CPtr(metaclass=InternedMeta):
    """``ct *``."""

    target: "CType"

    def __str__(self) -> str:
        return f"{self.target} *"


@dataclass(frozen=True, slots=True)
class CFun:
    """``ct × ... × ct →GC ct``."""

    params: Tuple["CType", ...]
    result: "CType"
    effect: GCEffect

    def __str__(self) -> str:
        params = " × ".join(str(p) for p in self.params) or "void"
        return f"({params} →{self.effect} {self.result})"


CType = Union[CVoid, CInt, CStruct, CTVar, CValue, CPtr, CFun]


def fresh_value(name: str = "") -> CValue:
    """``η(value) = α value`` with fresh ``α`` (paper §3.3.2)."""
    return CValue(mt=fresh_mt(name))


def fresh_ctvar(name: str = "") -> CTVar:
    return CTVar(name=name)


# ---------------------------------------------------------------------------
# Term traversal helpers
# ---------------------------------------------------------------------------


def iter_subterms(term: Union[CType, MLType, Psi, Sigma, Pi]) -> Iterator[object]:
    """Yield ``term`` and every type-level subterm beneath it (pre-order).

    Used by the occurs check and by pretty-printing; traverses the raw
    structure without consulting any substitution.
    """
    stack: list[object] = [term]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, CValue):
            stack.append(node.mt)
        elif isinstance(node, CPtr):
            stack.append(node.target)
        elif isinstance(node, CFun):
            stack.extend(node.params)
            stack.append(node.result)
            stack.append(node.effect)
        elif isinstance(node, MTArrow):
            stack.append(node.param)
            stack.append(node.result)
        elif isinstance(node, MTCustom):
            stack.append(node.ctype)
        elif isinstance(node, MTRepr):
            stack.append(node.psi)
            stack.append(node.sigma)
        elif isinstance(node, Sigma):
            stack.extend(node.prods)
            if node.tail is not None:
                stack.append(node.tail)
        elif isinstance(node, Pi):
            stack.extend(node.elems)
            if node.tail is not None:
                stack.append(node.tail)


def is_value_type(ct: CType) -> bool:
    return isinstance(ct, CValue)
